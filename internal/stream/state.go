package stream

import (
	"fmt"
	"math"

	"pfg/internal/kernel"
	"pfg/internal/ws"
)

// State is the complete restorable state of an Engine: every field a
// checkpoint must carry so that an engine rebuilt from it is bit-identical
// to the original — the very next Push, Rebuild, and CopyState produce the
// same bits an uncrashed engine would have. It is the boundary between the
// engine and the durability layer (internal/ckpt): the engine owns the
// invariants, ckpt owns the wire form.
//
// The slices returned by Engine.State are views of the engine's live
// buffers, valid only until the next writer call (Push/Rebuild/Release);
// serializers must finish with them under the same lock discipline that
// protects CopyState. NewFromState copies out of the given slices, so the
// caller keeps ownership.
//
// Dirty is not part of the state: it is derivable (the engine sets it
// exactly when a slide has happened since the last exact state, i.e.
// Slides > 0), so a checkpoint cannot encode an inconsistent combination.
// Likewise the float32 conversion scratch and the magnitude bound are
// reconstructed, not stored.
type State struct {
	N, Window    int
	RebuildEvery int
	Prec         Precision

	Count  int
	Head   int
	Slides int
	Gen    uint64

	// Float64 storage: Ring is window×n sample-major, G the n×n upper band,
	// GCur the fill phase's current-panel band (non-nil exactly while a
	// multi-panel float64 window is filling). Sums is the n rolling sums in
	// both modes.
	Ring []float64
	G    []float64
	GCur []float64
	Sums []float64

	// Float32 storage.
	Ring32 []float32
	G32    []float32
}

// needGCur reports whether a float64 engine of this shape carries a
// current-panel band: multi-panel windows allocate it at creation and
// release it when the fill completes.
func needGCur(prec Precision, window, count int) bool {
	return prec == Float64 && window > kernel.PanelLen && count < window
}

// State returns the engine's restorable state as views of its live buffers
// (see the State type for the ownership contract). A corrupt engine — a
// cancelled kernel left the band half-applied — is refused, exactly as
// CopyState refuses it: its band mixes pre- and post-tick terms that no
// restore could make sense of. Push or Rebuild first.
func (e *Engine) State() (State, error) {
	if e.corrupt {
		return State{}, fmt.Errorf("stream: moment state is awaiting resynchronization; Push or Rebuild first")
	}
	return State{
		N:            e.n,
		Window:       e.window,
		RebuildEvery: e.rebuildEvery,
		Prec:         e.prec,
		Count:        e.count,
		Head:         e.head,
		Slides:       e.slides,
		Gen:          e.gen,
		Ring:         e.ring,
		G:            e.g,
		GCur:         e.gCur,
		Sums:         e.s,
		Ring32:       e.ring32,
		G32:          e.g32,
	}, nil
}

// NewFromState reconstructs an engine from a State, drawing its long-lived
// buffers from w (exactly as New does) and copying the state arrays in. The
// state is validated against every structural invariant an engine maintains
// — shape, counter ranges, buffer lengths, the gCur split, ring finiteness
// and the overflow-safe magnitude bound — so a checkpoint decoder can hand
// over untrusted contents and rely on a non-nil error instead of a later
// panic or a poisoned band. On success the restored engine is bit-identical
// to the one State was read from.
func NewFromState(st State, w *ws.Workspace) (*Engine, error) {
	if err := st.validate(); err != nil {
		return nil, err
	}
	e, err := New(st.N, st.Window, st.RebuildEvery, st.Prec, w)
	if err != nil {
		return nil, err
	}
	if st.Prec == Float32 {
		copy(e.ring32, st.Ring32)
		copy(e.g32, st.G32)
	} else {
		copy(e.ring, st.Ring)
		copy(e.g, st.G)
		if st.GCur != nil {
			copy(e.gCur, st.GCur)
		} else if e.gCur != nil {
			// New allocates the current-panel band for every multi-panel
			// window; a filled window has already retired it.
			e.w.PutFloat64(e.gCur)
			e.gCur = nil
		}
	}
	copy(e.s, st.Sums)
	e.count = st.Count
	e.head = st.Head
	e.slides = st.Slides
	e.gen = st.Gen
	e.dirty = st.Slides > 0
	return e, nil
}

// validate checks every structural invariant a restored engine relies on.
func (st State) validate() error {
	if st.N < 1 {
		return fmt.Errorf("stream: state has %d series, need at least 1", st.N)
	}
	if st.Window < 2 {
		return fmt.Errorf("stream: state window %d < 2", st.Window)
	}
	if st.Prec != Float64 && st.Prec != Float32 {
		return fmt.Errorf("stream: state has unknown precision %d", st.Prec)
	}
	if st.Count < 0 || st.Count > st.Window {
		return fmt.Errorf("stream: state count %d outside [0,%d]", st.Count, st.Window)
	}
	if st.Head < 0 || st.Head >= st.Window {
		return fmt.Errorf("stream: state head %d outside [0,%d)", st.Head, st.Window)
	}
	if st.Count < st.Window && st.Head != st.Count {
		// While filling, the next free slot is the fill position; any other
		// combination cannot arise from a sequence of pushes.
		return fmt.Errorf("stream: state head %d does not match fill count %d", st.Head, st.Count)
	}
	if st.Slides < 0 {
		return fmt.Errorf("stream: state slides %d < 0", st.Slides)
	}
	if st.Count < st.Window && st.Slides != 0 {
		return fmt.Errorf("stream: state reports %d slides with an unfilled window", st.Slides)
	}
	if len(st.Sums) != st.N {
		return fmt.Errorf("stream: state sums have %d entries, want n=%d", len(st.Sums), st.N)
	}
	for i, v := range st.Sums {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("stream: state sum %d is non-finite", i)
		}
	}
	maxMag := maxSampleMagnitude(st.Window, st.Prec)
	if st.Prec == Float32 {
		if st.Ring != nil || st.G != nil || st.GCur != nil {
			return fmt.Errorf("stream: float32 state carries float64 arrays")
		}
		if len(st.Ring32) != st.Window*st.N {
			return fmt.Errorf("stream: state ring has %d entries, want window×n=%d", len(st.Ring32), st.Window*st.N)
		}
		if len(st.G32) != st.N*st.N {
			return fmt.Errorf("stream: state band has %d entries, want n²=%d", len(st.G32), st.N*st.N)
		}
		// The stored values are float32 roundings of admitted samples: allow
		// one rounding step past the admission bound.
		maxMag *= 1 + 1e-6
		if err := validateRing32(st.Ring32, st.N, st.Window, st.Count, st.Head, maxMag); err != nil {
			return err
		}
		if err := finiteF32("band", st.G32); err != nil {
			return err
		}
		return nil
	}
	if st.Ring32 != nil || st.G32 != nil {
		return fmt.Errorf("stream: float64 state carries float32 arrays")
	}
	if len(st.Ring) != st.Window*st.N {
		return fmt.Errorf("stream: state ring has %d entries, want window×n=%d", len(st.Ring), st.Window*st.N)
	}
	if len(st.G) != st.N*st.N {
		return fmt.Errorf("stream: state band has %d entries, want n²=%d", len(st.G), st.N*st.N)
	}
	if need := needGCur(st.Prec, st.Window, st.Count); need != (st.GCur != nil) {
		return fmt.Errorf("stream: state current-panel band present=%v, want %v for window %d at count %d",
			st.GCur != nil, need, st.Window, st.Count)
	}
	if st.GCur != nil && len(st.GCur) != st.N*st.N {
		return fmt.Errorf("stream: state current-panel band has %d entries, want n²=%d", len(st.GCur), st.N*st.N)
	}
	if err := validateRing64(st.Ring, st.N, st.Window, st.Count, st.Head, maxMag); err != nil {
		return err
	}
	if err := finiteF64("band", st.G); err != nil {
		return err
	}
	if st.GCur != nil {
		if err := finiteF64("current-panel band", st.GCur); err != nil {
			return err
		}
	}
	return nil
}

// validateRing64 checks the occupied ring slots: finite values within the
// overflow-safe admission bound (unoccupied slots are dead storage and may
// hold anything — typically zeros).
func validateRing64(ring []float64, n, window, count, head int, maxMag float64) error {
	start := head - count
	if start < 0 {
		start += window
	}
	for k := 0; k < count; k++ {
		slot := start + k
		if slot >= window {
			slot -= window
		}
		for i, v := range ring[slot*n : slot*n+n] {
			if math.IsNaN(v) || math.IsInf(v, 0) || v > maxMag || v < -maxMag {
				return fmt.Errorf("stream: state ring sample %d series %d (%g) is non-finite or exceeds the magnitude bound %g", k, i, v, maxMag)
			}
		}
	}
	return nil
}

func validateRing32(ring []float32, n, window, count, head int, maxMag float64) error {
	start := head - count
	if start < 0 {
		start += window
	}
	for k := 0; k < count; k++ {
		slot := start + k
		if slot >= window {
			slot -= window
		}
		for i, raw := range ring[slot*n : slot*n+n] {
			v := float64(raw)
			if math.IsNaN(v) || math.IsInf(v, 0) || v > maxMag || v < -maxMag {
				return fmt.Errorf("stream: state ring sample %d series %d (%g) is non-finite or exceeds the magnitude bound %g", k, i, v, maxMag)
			}
		}
	}
	return nil
}

func finiteF64(name string, s []float64) error {
	for i, v := range s {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("stream: state %s entry %d is non-finite", name, i)
		}
	}
	return nil
}

func finiteF32(name string, s []float32) error {
	for i, v := range s {
		f := float64(v)
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return fmt.Errorf("stream: state %s entry %d is non-finite", name, i)
		}
	}
	return nil
}
