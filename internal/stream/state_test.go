package stream

import (
	"context"
	"math"
	"strings"
	"testing"

	"pfg/internal/exec"
	"pfg/internal/kernel"
	"pfg/internal/ws"
)

// cloneState deep-copies a State's arrays so mutations for negative tests
// (and restores that outlive the source engine) own their storage.
func cloneState(st State) State {
	cp := st
	if st.Ring != nil {
		cp.Ring = append([]float64(nil), st.Ring...)
	}
	if st.G != nil {
		cp.G = append([]float64(nil), st.G...)
	}
	if st.GCur != nil {
		cp.GCur = append([]float64(nil), st.GCur...)
	}
	cp.Sums = append([]float64(nil), st.Sums...)
	if st.Ring32 != nil {
		cp.Ring32 = append([]float32(nil), st.Ring32...)
	}
	if st.G32 != nil {
		cp.G32 = append([]float32(nil), st.G32...)
	}
	return cp
}

// sameEngineBits asserts two engines expose bit-identical snapshot state
// (moment band + sums via CopyState) and identical counters.
func sameEngineBits(t *testing.T, tag string, a, b *Engine) {
	t.Helper()
	if a.Len() != b.Len() || a.N() != b.N() || a.Generation() != b.Generation() || a.Exact() != b.Exact() {
		t.Fatalf("%s: counters diverge: len %d/%d n %d/%d gen %d/%d exact %v/%v",
			tag, a.Len(), b.Len(), a.N(), b.N(), a.Generation(), b.Generation(), a.Exact(), b.Exact())
	}
	n := a.N()
	ga, sa := make([]float64, n*n), make([]float64, n)
	gb, sb := make([]float64, n*n), make([]float64, n)
	if _, err := a.CopyState(ga, sa); err != nil {
		t.Fatalf("%s: CopyState a: %v", tag, err)
	}
	if _, err := b.CopyState(gb, sb); err != nil {
		t.Fatalf("%s: CopyState b: %v", tag, err)
	}
	for i := range ga {
		if math.Float64bits(ga[i]) != math.Float64bits(gb[i]) {
			t.Fatalf("%s: band[%d] %v != %v", tag, i, ga[i], gb[i])
		}
	}
	for i := range sa {
		if math.Float64bits(sa[i]) != math.Float64bits(sb[i]) {
			t.Fatalf("%s: sums[%d] %v != %v", tag, i, sa[i], sb[i])
		}
	}
}

// TestStateRoundTrip is the restore bit-identity property at the engine
// layer: State → NewFromState reproduces the exact bits, and — the part a
// simple copy test would miss — the restored engine EVOLVES identically:
// subsequent pushes (crossing panel folds, the fill boundary, and periodic
// rebuilds) land on bit-identical states.
func TestStateRoundTrip(t *testing.T) {
	cases := []struct {
		name         string
		n, window    int
		rebuildEvery int
		prec         Precision
		fill         int // pushes before the checkpoint
		extra        int // pushes replayed after restore on both engines
	}{
		{"f64-midfill", 6, 16, 4, Float64, 9, 20},
		{"f64-rolled", 6, 16, 4, Float64, 16 + 10, 13},
		{"f32-midfill", 5, 12, 4, Float32, 7, 18},
		{"f32-rolled", 5, 12, 4, Float32, 12 + 9, 11},
		// A multi-panel window (> kernel.PanelLen) mid-fill carries the
		// gCur split, crossing a panel boundary during the replayed pushes.
		{"f64-multipanel", 3, kernel.PanelLen + 40, 6, Float64, kernel.PanelLen + 20, 60},
	}
	pool := exec.New(1)
	defer pool.Close()
	ctx := context.Background()
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if tc.window > kernel.PanelLen && tc.fill < tc.window && tc.prec == Float64 {
				// Sanity: this case must actually exercise the gCur path.
				if tc.fill <= kernel.PanelLen {
					t.Fatalf("bad case: fill %d does not reach the second panel", tc.fill)
				}
			}
			feed := ticks(int64(tc.n)*1000+int64(tc.window), tc.n, tc.fill+tc.extra)
			orig, err := New(tc.n, tc.window, tc.rebuildEvery, tc.prec, ws.New())
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < tc.fill; i++ {
				if err := orig.Push(ctx, pool, feed[i]); err != nil {
					t.Fatal(err)
				}
			}
			st, err := orig.State()
			if err != nil {
				t.Fatal(err)
			}
			if tc.prec == Float64 && tc.window > kernel.PanelLen && tc.fill < tc.window && st.GCur == nil {
				t.Fatal("multi-panel mid-fill state is missing the current-panel band")
			}
			restored, err := NewFromState(cloneState(st), ws.New())
			if err != nil {
				t.Fatal(err)
			}
			sameEngineBits(t, "restored", orig, restored)
			for i := tc.fill; i < tc.fill+tc.extra; i++ {
				if err := orig.Push(ctx, pool, feed[i]); err != nil {
					t.Fatal(err)
				}
				if err := restored.Push(ctx, pool, feed[i]); err != nil {
					t.Fatal(err)
				}
				sameEngineBits(t, tc.name, orig, restored)
			}
			// A forced rebuild must land both on the same exact state too.
			if err := orig.Rebuild(ctx, pool); err != nil {
				t.Fatal(err)
			}
			if err := restored.Rebuild(ctx, pool); err != nil {
				t.Fatal(err)
			}
			sameEngineBits(t, tc.name+"/rebuilt", orig, restored)
		})
	}
}

// TestStateEmptyEngine round-trips an engine that has admitted nothing.
func TestStateEmptyEngine(t *testing.T) {
	e, err := New(4, 8, 2, Float64, ws.New())
	if err != nil {
		t.Fatal(err)
	}
	st, err := e.State()
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewFromState(cloneState(st), ws.New())
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 0 || r.Generation() != 0 || !r.Exact() {
		t.Fatalf("restored empty engine: len %d gen %d exact %v", r.Len(), r.Generation(), r.Exact())
	}
}

// TestStateValidation rejects every class of structurally broken state with
// a descriptive error instead of building a poisoned engine.
func TestStateValidation(t *testing.T) {
	pool := exec.New(1)
	defer pool.Close()
	base := func(t *testing.T) State {
		e, err := New(4, 8, 4, Float64, ws.New())
		if err != nil {
			t.Fatal(err)
		}
		for _, x := range ticks(7, 4, 11) {
			if err := e.Push(context.Background(), pool, x); err != nil {
				t.Fatal(err)
			}
		}
		st, err := e.State()
		if err != nil {
			t.Fatal(err)
		}
		return cloneState(st)
	}
	cases := []struct {
		name string
		mut  func(*State)
		want string
	}{
		{"zero-n", func(s *State) { s.N = 0 }, "series"},
		{"window-1", func(s *State) { s.Window = 1 }, "window"},
		{"bad-precision", func(s *State) { s.Prec = 9 }, "precision"},
		{"count-over", func(s *State) { s.Count = s.Window + 1 }, "count"},
		{"head-over", func(s *State) { s.Head = s.Window }, "head"},
		{"head-fill-mismatch", func(s *State) { s.Count, s.Slides = 3, 0; s.Head = 5 }, "head"},
		{"negative-slides", func(s *State) { s.Slides = -1 }, "slides"},
		{"slides-unfilled", func(s *State) { s.Count = s.Window - 1; s.Head = s.Count }, "slides"},
		{"short-sums", func(s *State) { s.Sums = s.Sums[:2] }, "sums"},
		{"nan-sum", func(s *State) { s.Sums[0] = math.NaN() }, "non-finite"},
		{"short-ring", func(s *State) { s.Ring = s.Ring[:len(s.Ring)-1] }, "ring"},
		{"short-band", func(s *State) { s.G = s.G[:len(s.G)-1] }, "band"},
		{"nan-ring", func(s *State) { s.Ring[0] = math.NaN() }, "ring"},
		{"huge-ring", func(s *State) { s.Ring[3] = math.MaxFloat64 }, "magnitude"},
		{"inf-band", func(s *State) { s.G[1] = math.Inf(1) }, "band"},
		{"stray-gcur", func(s *State) { s.GCur = make([]float64, s.N*s.N) }, "current-panel"},
		{"mode-mix", func(s *State) { s.Ring32 = make([]float32, s.Window*s.N) }, "float32"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			st := base(t)
			tc.mut(&st)
			if _, err := NewFromState(st, ws.New()); err == nil {
				t.Fatal("broken state accepted")
			} else if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestStateRefusesCorrupt: a cancelled kernel leaves the engine awaiting
// resynchronization; State must refuse exactly as CopyState does.
func TestStateRefusesCorrupt(t *testing.T) {
	pool := exec.New(1)
	defer pool.Close()
	e, err := New(4, 6, 0, Float64, ws.New())
	if err != nil {
		t.Fatal(err)
	}
	feed := ticks(3, 4, 8)
	for _, x := range feed[:7] {
		if err := e.Push(context.Background(), pool, x); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := e.Push(ctx, pool, feed[7]); err == nil {
		t.Skip("cancelled push was not interrupted")
	}
	if _, err := e.State(); err == nil {
		t.Fatal("corrupt engine produced a state")
	}
}
