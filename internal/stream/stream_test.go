package stream

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"pfg/internal/exec"
	"pfg/internal/matrix"
	"pfg/internal/ws"
)

// ticks generates a deterministic stream of samples (each length n).
func ticks(seed int64, n, count int) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]float64, count)
	for k := range out {
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64() + 0.3*math.Sin(float64(k)/7+float64(i))
		}
		out[k] = x
	}
	return out
}

// batchWindow runs the batch Pearson pipeline over the engine's current
// window with a sequential pool, returning sim and dis.
func batchWindow(t *testing.T, e *Engine) (*matrix.Sym, *matrix.Sym) {
	t.Helper()
	z := e.Linearize()
	defer e.Workspace().PutFloat64(z)
	n, l := e.N(), e.Len()
	series := make([][]float64, n)
	for i := range series {
		series[i] = z[i*l : (i+1)*l]
	}
	pool := exec.New(1)
	defer pool.Close()
	sim, dis, err := matrix.PearsonDissimWS(context.Background(), pool, nil, series)
	if err != nil {
		t.Fatal(err)
	}
	return sim, dis
}

// snapshot materializes the engine's moments through the shared finish.
func snapshot(t *testing.T, e *Engine) (*matrix.Sym, *matrix.Sym) {
	t.Helper()
	n := e.N()
	sim := matrix.NewSym(n)
	dis := matrix.NewSym(n)
	sums := make([]float64, n)
	cnt, err := e.CopyState(sim.Data, sums)
	if err != nil {
		t.Fatal(err)
	}
	pool := exec.New(1)
	defer pool.Close()
	if err := matrix.FinishMomentsWS(context.Background(), pool, nil, sim, dis, sums, cnt); err != nil {
		t.Fatal(err)
	}
	return sim, dis
}

func bitsEqual(a, b []float64) int {
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return i
		}
	}
	return -1
}

func maxAbsDiff(a, b []float64) float64 {
	m := 0.0
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

// TestEngineFillBitIdentical: while the window is filling (and right at
// fill), every snapshot is bit-identical to the batch pipeline over the
// pushed samples — the exactness half of the streaming contract.
func TestEngineFillBitIdentical(t *testing.T) {
	const n, window = 7, 16
	e, err := New(n, window, 4, Float64, ws.New())
	if err != nil {
		t.Fatal(err)
	}
	pool := exec.New(1)
	defer pool.Close()
	ctx := context.Background()
	for k, x := range ticks(1, n, window) {
		if err := e.Push(ctx, pool, x); err != nil {
			t.Fatal(err)
		}
		if e.Len() != k+1 || !e.Exact() {
			t.Fatalf("after %d pushes: Len=%d Exact=%v", k+1, e.Len(), e.Exact())
		}
		if k+1 < 2 {
			continue
		}
		sim, dis := snapshot(t, e)
		wantSim, wantDis := batchWindow(t, e)
		if i := bitsEqual(sim.Data, wantSim.Data); i >= 0 {
			t.Fatalf("tick %d: sim[%d] = %v, batch %v", k, i, sim.Data[i], wantSim.Data[i])
		}
		if i := bitsEqual(dis.Data, wantDis.Data); i >= 0 {
			t.Fatalf("tick %d: dis[%d] differs", k, i)
		}
	}
}

// TestEngineSlideDriftAndRebuild: after the window slides the moments drift
// but stay within tolerance of batch, the engine reports itself inexact, and
// a rebuild — periodic or forced — restores bit-identity.
func TestEngineSlideDriftAndRebuild(t *testing.T) {
	const n, window, K = 6, 12, 5
	e, err := New(n, window, K, Float64, ws.New())
	if err != nil {
		t.Fatal(err)
	}
	pool := exec.New(1)
	defer pool.Close()
	ctx := context.Background()
	stream := ticks(2, n, window+3*K+2)
	for k, x := range stream {
		if err := e.Push(ctx, pool, x); err != nil {
			t.Fatal(err)
		}
		if k < window {
			continue
		}
		slides := k + 1 - window
		wantExact := slides%K == 0 // every K-th slide triggers the rebuild
		if e.Exact() != wantExact {
			t.Fatalf("tick %d (slides=%d): Exact=%v want %v", k, slides, e.Exact(), wantExact)
		}
		sim, _ := snapshot(t, e)
		wantSim, _ := batchWindow(t, e)
		if wantExact {
			if i := bitsEqual(sim.Data, wantSim.Data); i >= 0 {
				t.Fatalf("tick %d: rebuilt snapshot not bit-identical at %d", k, i)
			}
		} else if d := maxAbsDiff(sim.Data, wantSim.Data); d > 1e-9 {
			t.Fatalf("tick %d: drift %v exceeds tolerance", k, d)
		}
	}

	// Push one more slide so the state is dirty, then force a rebuild.
	if err := e.Push(ctx, pool, ticks(3, n, 1)[0]); err != nil {
		t.Fatal(err)
	}
	if e.Exact() {
		t.Fatal("expected dirty state before forced rebuild")
	}
	if err := e.Rebuild(ctx, pool); err != nil {
		t.Fatal(err)
	}
	if !e.Exact() || e.SlidesSinceRebuild() != 0 {
		t.Fatal("forced rebuild did not restore exactness")
	}
	sim, dis := snapshot(t, e)
	wantSim, wantDis := batchWindow(t, e)
	if i := bitsEqual(sim.Data, wantSim.Data); i >= 0 {
		t.Fatalf("forced rebuild: sim[%d] differs", i)
	}
	if i := bitsEqual(dis.Data, wantDis.Data); i >= 0 {
		t.Fatalf("forced rebuild: dis[%d] differs", i)
	}
}

// TestEngineWorkersBitIdentical: the moment band is bit-independent of the
// worker budget driving the rank-1 and rebuild kernels.
func TestEngineWorkersBitIdentical(t *testing.T) {
	const n, window = 33, 20
	stream := ticks(4, n, window+13)
	run := func(workers int) []float64 {
		e, err := New(n, window, 8, Float64, ws.New())
		if err != nil {
			t.Fatal(err)
		}
		pool := exec.New(workers)
		defer pool.Close()
		for _, x := range stream {
			if err := e.Push(context.Background(), pool, x); err != nil {
				t.Fatal(err)
			}
		}
		g := make([]float64, n*n)
		s := make([]float64, n)
		if _, err := e.CopyState(g, s); err != nil {
			t.Fatal(err)
		}
		return append(g, s...)
	}
	want := run(1)
	for _, workers := range []int{2, 5} {
		got := run(workers)
		if i := bitsEqual(got, want); i >= 0 {
			t.Fatalf("workers=%d: state differs at %d", workers, i)
		}
	}
}

// TestEngineValidation pins the error surface: bad constructor arguments,
// wrong sample arity, and non-finite samples (which must leave the state
// untouched).
func TestEngineValidation(t *testing.T) {
	if _, err := New(0, 8, 0, Float64, nil); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := New(4, 1, 0, Float64, nil); err == nil {
		t.Fatal("window=1 accepted")
	}
	e, err := New(3, 4, 0, Float64, ws.New())
	if err != nil {
		t.Fatal(err)
	}
	pool := exec.New(1)
	defer pool.Close()
	ctx := context.Background()
	if err := e.Push(ctx, pool, []float64{1, 2}); err == nil {
		t.Fatal("short sample accepted")
	}
	if err := e.Push(ctx, pool, []float64{1, math.NaN(), 2}); err == nil {
		t.Fatal("NaN sample accepted")
	}
	if err := e.Push(ctx, pool, []float64{1, math.Inf(-1), 2}); err == nil {
		t.Fatal("Inf sample accepted")
	}
	// Finite but band-overflowing magnitudes are rejected at the door: one
	// admitted 1e160 sample would drive g to +Inf and its downdate would
	// leave NaNs no roll could remove.
	if err := e.Push(ctx, pool, []float64{1, 1e160, 2}); err == nil {
		t.Fatal("band-overflowing magnitude accepted")
	}
	if e.Len() != 0 {
		t.Fatal("rejected pushes mutated the window")
	}
	if err := e.Push(ctx, pool, []float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if e.Len() != 1 {
		t.Fatal("valid push not admitted")
	}
}

// TestEngineCancelledPushRecovers: a Push aborted by a cancelled context
// reports the error, leaves the sample unadmitted, and the engine
// resynchronizes from the ring on the next successful operation — no
// half-applied tick ever reaches a snapshot.
func TestEngineCancelledPushRecovers(t *testing.T) {
	const n, window = 5, 8
	e, err := New(n, window, 0, Float64, ws.New())
	if err != nil {
		t.Fatal(err)
	}
	pool := exec.New(1)
	defer pool.Close()
	ctx := context.Background()
	stream := ticks(9, n, window+3)
	for _, x := range stream[:window+1] {
		if err := e.Push(ctx, pool, x); err != nil {
			t.Fatal(err)
		}
	}
	cancelled, cancel := context.WithCancel(ctx)
	cancel()
	if err := e.Push(cancelled, pool, stream[window+1]); err == nil {
		t.Fatal("cancelled push succeeded")
	}
	if e.Exact() {
		t.Fatal("engine claims exactness after an aborted kernel")
	}
	// The half-applied band must be refused, not served.
	if _, err := e.CopyState(make([]float64, n*n), make([]float64, n)); err == nil {
		t.Fatal("corrupt moment state served to a snapshot")
	}
	if err := e.Push(ctx, pool, stream[window+2]); err != nil {
		t.Fatal(err)
	}
	if e.Len() != window {
		t.Fatalf("Len=%d", e.Len())
	}
	if err := e.Rebuild(ctx, pool); err != nil {
		t.Fatal(err)
	}
	sim, _ := snapshot(t, e)
	wantSim, _ := batchWindow(t, e)
	if i := bitsEqual(sim.Data, wantSim.Data); i >= 0 {
		t.Fatalf("recovered state differs from batch at %d", i)
	}
	// The cancelled sample must not be in the window: its successor is the
	// newest ring entry.
	z := e.Linearize()
	defer e.Workspace().PutFloat64(z)
	for i := 0; i < n; i++ {
		if z[i*window+window-1] != stream[window+2][i] {
			t.Fatalf("series %d newest sample is %v, want %v", i, z[i*window+window-1], stream[window+2][i])
		}
	}
}

// TestEngineRebuildDisabled: rebuildEvery ≤ 0 never rebuilds on its own.
func TestEngineRebuildDisabled(t *testing.T) {
	const n, window = 4, 6
	e, err := New(n, window, -1, Float64, ws.New())
	if err != nil {
		t.Fatal(err)
	}
	pool := exec.New(1)
	defer pool.Close()
	for _, x := range ticks(5, n, 40) {
		if err := e.Push(context.Background(), pool, x); err != nil {
			t.Fatal(err)
		}
	}
	if e.Exact() || e.SlidesSinceRebuild() != 40-window {
		t.Fatalf("Exact=%v slides=%d", e.Exact(), e.SlidesSinceRebuild())
	}
}
