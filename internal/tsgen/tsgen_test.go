package tsgen

import (
	"math"
	"testing"

	"pfg/internal/matrix"
)

func TestCatalogShape(t *testing.T) {
	cat := Catalog()
	if len(cat) != 18 {
		t.Fatalf("catalog has %d entries, want 18", len(cat))
	}
	for i, e := range cat {
		if e.ID != i+1 {
			t.Fatalf("entry %d has ID %d", i, e.ID)
		}
		if e.N < e.Classes*2 || e.Length < 8 || e.Noise <= 0 {
			t.Fatalf("bad entry %+v", e)
		}
	}
	// Spot-check against Table II.
	if cat[5].Name != "ECG5000" || cat[5].N != 5000 || cat[5].Length != 140 || cat[5].Classes != 5 {
		t.Fatalf("ECG5000 entry wrong: %+v", cat[5])
	}
	if cat[16].Name != "Crop" || cat[16].N != 19412 || cat[16].Classes != 24 {
		t.Fatalf("Crop entry wrong: %+v", cat[16])
	}
}

func TestGenerateRespectsCaps(t *testing.T) {
	e := Catalog()[0]
	ds := Generate(e, 100, 64, 1)
	if len(ds.Series) != 100 {
		t.Fatalf("n=%d want 100", len(ds.Series))
	}
	if ds.Length != 64 || len(ds.Series[0]) != 64 {
		t.Fatalf("length=%d want 64", ds.Length)
	}
	// Uncapped keeps paper sizes.
	ds2 := Generate(Catalog()[14], 0, 0, 1)
	if len(ds2.Series) != 980 {
		t.Fatalf("uncapped n=%d want 980", len(ds2.Series))
	}
}

func TestGenerateDeterministic(t *testing.T) {
	e := Catalog()[3]
	a := Generate(e, 50, 50, 9)
	b := Generate(e, 50, 50, 9)
	for i := range a.Series {
		for t0 := range a.Series[i] {
			if a.Series[i][t0] != b.Series[i][t0] {
				t.Fatal("generation not deterministic")
			}
		}
	}
	c := Generate(e, 50, 50, 10)
	same := true
	for i := range a.Series {
		for t0 := range a.Series[i] {
			if a.Series[i][t0] != c.Series[i][t0] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("different seeds gave identical data")
	}
}

func TestLabelsBalanced(t *testing.T) {
	ds := GenerateClassed("x", 90, 32, 3, 0.3, 4)
	counts := map[int]int{}
	for _, l := range ds.Labels {
		counts[l]++
	}
	if len(counts) != 3 {
		t.Fatalf("got %d classes", len(counts))
	}
	for c, n := range counts {
		if n != 30 {
			t.Fatalf("class %d has %d members", c, n)
		}
	}
}

func TestWithinClassCorrelationHigher(t *testing.T) {
	ds := GenerateClassed("x", 60, 128, 3, 0.4, 5)
	corr, err := matrix.Pearson(ds.Series)
	if err != nil {
		t.Fatal(err)
	}
	var within, across float64
	var nw, na int
	for i := 0; i < 60; i++ {
		for j := i + 1; j < 60; j++ {
			if ds.Labels[i] == ds.Labels[j] {
				within += corr.At(i, j)
				nw++
			} else {
				across += corr.At(i, j)
				na++
			}
		}
	}
	within /= float64(nw)
	across /= float64(na)
	if within < across+0.2 {
		t.Fatalf("within-class correlation %.3f not clearly above cross-class %.3f", within, across)
	}
}

func TestNoiseControlsDifficulty(t *testing.T) {
	easy := GenerateClassed("e", 40, 128, 2, 0.1, 6)
	hard := GenerateClassed("h", 40, 128, 2, 3.0, 6)
	sep := func(ds *Dataset) float64 {
		corr, _ := matrix.Pearson(ds.Series)
		var within, across float64
		var nw, na int
		for i := 0; i < 40; i++ {
			for j := i + 1; j < 40; j++ {
				if ds.Labels[i] == ds.Labels[j] {
					within += corr.At(i, j)
					nw++
				} else {
					across += corr.At(i, j)
					na++
				}
			}
		}
		return within/float64(nw) - across/float64(na)
	}
	if sep(easy) <= sep(hard) {
		t.Fatal("higher noise should reduce class separation")
	}
}

func TestGenerateStocksBasics(t *testing.T) {
	sd := GenerateStocks(200, 250, 7)
	if len(sd.Returns) != 200 || len(sd.Prices) != 200 || len(sd.Sector) != 200 {
		t.Fatal("wrong output sizes")
	}
	for i := range sd.Returns {
		if len(sd.Returns[i]) != 250 {
			t.Fatal("wrong days")
		}
		if sd.Sector[i] < 0 || sd.Sector[i] >= len(SectorNames) {
			t.Fatalf("bad sector %d", sd.Sector[i])
		}
		if sd.MarketCap[i] <= 0 {
			t.Fatal("non-positive market cap")
		}
		// Detrended: mean return ≈ 0.
		mean := 0.0
		for _, r := range sd.Returns[i] {
			mean += r
		}
		if math.Abs(mean/250) > 1e-12 {
			t.Fatalf("returns of stock %d not detrended", i)
		}
		for _, p := range sd.Prices[i] {
			if p <= 0 || math.IsNaN(p) {
				t.Fatal("bad price path")
			}
		}
	}
	// All sectors present.
	seen := map[int]bool{}
	for _, s := range sd.Sector {
		seen[s] = true
	}
	if len(seen) != len(SectorNames) {
		t.Fatalf("only %d sectors present", len(seen))
	}
}

func TestStockSectorCorrelationStructure(t *testing.T) {
	sd := GenerateStocks(150, 400, 8)
	corr, err := matrix.Pearson(sd.Returns)
	if err != nil {
		t.Fatal(err)
	}
	var within, across float64
	var nw, na int
	for i := 0; i < 150; i++ {
		for j := i + 1; j < 150; j++ {
			if sd.Sector[i] == sd.Sector[j] {
				within += corr.At(i, j)
				nw++
			} else {
				across += corr.At(i, j)
				na++
			}
		}
	}
	within /= float64(nw)
	across /= float64(na)
	if within < across+0.05 {
		t.Fatalf("same-sector correlation %.3f not above cross-sector %.3f", within, across)
	}
}

func TestSmallCapsNoisier(t *testing.T) {
	sd := GenerateStocks(300, 300, 9)
	// Correlation of small caps with their sector peers should be weaker.
	corr, _ := matrix.Pearson(sd.Returns)
	sectorPeerCorr := func(i int) float64 {
		s, c := 0.0, 0
		for j := range sd.Returns {
			if j != i && sd.Sector[j] == sd.Sector[i] {
				s += corr.At(i, j)
				c++
			}
		}
		return s / float64(c)
	}
	var small, large []float64
	for i := range sd.Returns {
		if sd.MarketCap[i] < 2e8 {
			small = append(small, sectorPeerCorr(i))
		} else if sd.MarketCap[i] > 5e9 {
			large = append(large, sectorPeerCorr(i))
		}
	}
	if len(small) == 0 || len(large) == 0 {
		t.Skip("cap distribution did not produce both tails")
	}
	mean := func(xs []float64) float64 {
		s := 0.0
		for _, x := range xs {
			s += x
		}
		return s / float64(len(xs))
	}
	if mean(small) >= mean(large) {
		t.Fatalf("small caps (%.3f) should correlate less than large caps (%.3f)", mean(small), mean(large))
	}
}
