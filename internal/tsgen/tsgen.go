// Package tsgen generates the synthetic workloads that substitute for the
// paper's data sets (documented in DESIGN.md §4):
//
//   - A catalog of UCR-like time-series classification data sets mirroring
//     Table II's (n, length, #classes) shapes, generated from random smooth
//     Fourier class prototypes with phase jitter, amplitude scaling, and
//     Gaussian noise. The per-entry noise level is varied so clustering
//     difficulty (and thus the ARI spread across methods) resembles the
//     paper's.
//   - A US-stock-market-like factor model: market factor + sector factors +
//     idiosyncratic noise for 11 named sectors, with log-normal market caps
//     where small-cap stocks receive more idiosyncratic noise (reproducing
//     the Figure 10/11 scenario).
//
// All generators are deterministic given a seed.
package tsgen

import (
	"fmt"
	"math"
	"math/rand"
)

// Dataset is a labeled time-series collection.
type Dataset struct {
	Name       string
	Series     [][]float64
	Labels     []int
	NumClasses int
	Length     int
}

// CatalogEntry describes one synthetic data set, mirroring a Table II row.
type CatalogEntry struct {
	ID      int
	Name    string
	N       int // object count in the paper (scaled at generation time)
	Length  int
	Classes int
	// Noise is the per-entry noise level controlling clustering difficulty.
	Noise float64
}

// Catalog returns the 18 entries of Table II. The Noise levels are chosen so
// the catalog spans easy (clear clusters) through hard (heavily mixed),
// mirroring the ARI spread in the paper's Figure 8.
func Catalog() []CatalogEntry {
	return []CatalogEntry{
		{1, "Mallat", 2400, 1024, 8, 0.4},
		{2, "UWaveGestureLibraryAll", 4478, 945, 8, 0.7},
		{3, "NonInvasiveFetalECGThorax2", 3765, 750, 42, 0.6},
		{4, "MixedShapesRegularTrain", 2925, 1024, 5, 0.5},
		{5, "MixedShapesSmallTrain", 2525, 1024, 5, 0.6},
		{6, "ECG5000", 5000, 140, 5, 0.8},
		{7, "NonInvasiveFetalECGThorax1", 3765, 750, 42, 0.7},
		{8, "StarLightCurves", 9236, 84, 2, 0.9},
		{9, "HandOutlines", 1370, 2709, 2, 1.4},
		{10, "UWaveGestureLibraryX", 4478, 315, 8, 0.9},
		{11, "CBF", 930, 128, 3, 0.5},
		{12, "InsectWingbeatSound", 2200, 256, 11, 1.1},
		{13, "UWaveGestureLibraryY", 4478, 315, 8, 1.0},
		{14, "ShapesAll", 1200, 512, 60, 0.6},
		{15, "SonyAIBORobotSurface2", 980, 65, 2, 0.8},
		{16, "FreezerSmallTrain", 2878, 301, 2, 0.7},
		{17, "Crop", 19412, 46, 24, 1.0},
		{18, "ElectricDevices", 16160, 96, 7, 1.2},
	}
}

// Generate materializes a catalog entry. maxN caps the object count (0 means
// no cap) and maxLen caps the series length (0 means no cap); the paper's
// sizes make the Θ(n²)-memory baselines too large for small machines, so
// the experiment harness scales them down proportionally.
func Generate(e CatalogEntry, maxN, maxLen int, seed int64) *Dataset {
	n, l := e.N, e.Length
	if maxN > 0 && n > maxN {
		n = maxN
	}
	if maxLen > 0 && l > maxLen {
		l = maxLen
	}
	if n < e.Classes*2 {
		n = e.Classes * 2
	}
	return GenerateClassed(e.Name, n, l, e.Classes, e.Noise, seed)
}

// GenerateClassed generates n series of the given length split evenly among
// the classes, with the given noise level.
func GenerateClassed(name string, n, length, classes int, noise float64, seed int64) *Dataset {
	if classes < 1 || n < classes || length < 8 {
		panic(fmt.Sprintf("tsgen: bad parameters n=%d length=%d classes=%d", n, length, classes))
	}
	rng := rand.New(rand.NewSource(seed))
	// Class prototypes: random Fourier series with a handful of harmonics.
	// Each class has two "modes" sharing most harmonics (UCR classes are
	// multi-modal and elongated, which is what distinguishes topology-aware
	// clustering from purely agglomerative linkage on these data).
	const harmonics = 6
	type proto struct {
		amp, freq, phase [harmonics]float64
	}
	protos := make([]proto, 2*classes)
	for c := 0; c < classes; c++ {
		a := &protos[2*c]
		for h := 0; h < harmonics; h++ {
			a.amp[h] = rng.Float64() * 2 / float64(h+1)
			a.freq[h] = 1 + rng.Float64()*9
			a.phase[h] = rng.Float64() * 2 * math.Pi
		}
		// Mode B: redraw the two highest harmonics and nudge the phases.
		b := &protos[2*c+1]
		*b = *a
		for h := harmonics - 2; h < harmonics; h++ {
			b.amp[h] = rng.Float64() * 2 / float64(h+1)
			b.freq[h] = 1 + rng.Float64()*9
			b.phase[h] = rng.Float64() * 2 * math.Pi
		}
		for h := 0; h < harmonics-2; h++ {
			b.phase[h] += rng.NormFloat64() * 0.25
		}
	}
	eval := func(p *proto, t, shift, ampScale float64) float64 {
		v := 0.0
		for h := 0; h < harmonics; h++ {
			v += p.amp[h] * math.Sin(p.freq[h]*(t+shift)*2*math.Pi+p.phase[h])
		}
		return v * ampScale
	}
	ds := &Dataset{Name: name, NumClasses: classes, Length: length}
	for i := 0; i < n; i++ {
		c := i % classes
		mode := 2 * c
		if rng.Float64() < 0.4 {
			mode++
		}
		shift := rng.NormFloat64() * 0.03
		ampScale := 1 + rng.NormFloat64()*0.15
		s := make([]float64, length)
		for t := 0; t < length; t++ {
			x := float64(t) / float64(length)
			s[t] = eval(&protos[mode], x, shift, ampScale) + rng.NormFloat64()*noise
		}
		ds.Series = append(ds.Series, s)
		ds.Labels = append(ds.Labels, c)
	}
	return ds
}

// SectorNames are the 11 ICB-style industry names of Figure 10.
var SectorNames = []string{
	"TECHNOLOGY", "INDUSTRIALS", "FINANCIALS", "HEALTH CARE",
	"CONSUMER DISCRETIONARY", "REAL ESTATE", "UTILITIES",
	"CONSUMER STAPLES", "BASIC MATERIALS", "ENERGY", "TELECOMMUNICATIONS",
}

// sectorShares approximate the relative sizes of the sectors in the paper's
// 1614-stock universe.
var sectorShares = []float64{0.16, 0.15, 0.15, 0.12, 0.12, 0.07, 0.05, 0.06, 0.05, 0.05, 0.02}

// StockData is a synthetic stock-market panel.
type StockData struct {
	// Returns[i] is stock i's detrended daily log-return series.
	Returns [][]float64
	// Prices[i] is the cumulated price path (starting at 100).
	Prices [][]float64
	// Sector[i] indexes into SectorNames.
	Sector []int
	// MarketCap[i] is a log-normal market capitalization.
	MarketCap []float64
}

// GenerateStocks generates n stocks over the given number of trading days
// using a market + sector factor model. Smaller-cap stocks receive more
// idiosyncratic noise, which makes their correlations weaker and their
// clusters more mixed — the effect Figure 11 documents.
func GenerateStocks(n, days int, seed int64) *StockData {
	if n < len(SectorNames) || days < 16 {
		panic(fmt.Sprintf("tsgen: need n ≥ %d and days ≥ 16, got n=%d days=%d", len(SectorNames), n, days))
	}
	rng := rand.New(rand.NewSource(seed))
	k := len(SectorNames)
	// Assign sectors by share.
	sector := make([]int, n)
	idx := 0
	for s := 0; s < k; s++ {
		count := int(math.Round(sectorShares[s] * float64(n)))
		if s == k-1 {
			count = n - idx
		}
		for c := 0; c < count && idx < n; c++ {
			sector[idx] = s
			idx++
		}
	}
	for ; idx < n; idx++ {
		sector[idx] = rng.Intn(k)
	}
	// Market caps: log-normal.
	caps := make([]float64, n)
	for i := range caps {
		caps[i] = math.Exp(rng.NormFloat64()*2 + 21) // ~1e9 median
	}
	// Factor paths.
	market := make([]float64, days)
	sectors := make([][]float64, k)
	for t := range market {
		market[t] = rng.NormFloat64() * 0.01
	}
	for s := range sectors {
		sectors[s] = make([]float64, days)
		for t := range sectors[s] {
			sectors[s][t] = rng.NormFloat64() * 0.012
		}
	}
	sd := &StockData{Sector: sector, MarketCap: caps}
	capMedian := 21.0 // log scale center
	for i := 0; i < n; i++ {
		betaM := 0.6 + rng.Float64()*0.9
		betaS := 0.7 + rng.Float64()*0.9
		// Idiosyncratic volatility grows as cap shrinks.
		capZ := (math.Log(caps[i]) - capMedian) / 2
		idio := 0.012 * math.Exp(-0.45*capZ)
		if idio > 0.08 {
			idio = 0.08
		}
		ret := make([]float64, days)
		price := make([]float64, days)
		p := 100.0
		for t := 0; t < days; t++ {
			r := betaM*market[t] + betaS*sectors[sector[i]][t] + rng.NormFloat64()*idio
			ret[t] = r
			p *= math.Exp(r)
			price[t] = p
		}
		// Detrend (remove the mean log-return, as in Musmeci et al.).
		mean := 0.0
		for _, r := range ret {
			mean += r
		}
		mean /= float64(days)
		for t := range ret {
			ret[t] -= mean
		}
		sd.Returns = append(sd.Returns, ret)
		sd.Prices = append(sd.Prices, price)
	}
	return sd
}
