// Command pfg-cluster hierarchically clusters time series from a CSV file
// (one series per row, equal lengths) and prints one cluster label per row.
//
// Usage:
//
//	pfg-cluster -k 8 [-method tmfg-dbht|pmfg-dbht|complete|average]
//	            [-prefix 10] [-labeled] [-ari] [-newick tree.nwk] data.csv
//
// With -labeled, the final column of each row is a ground-truth class label
// (ignored for clustering); adding -ari prints the Adjusted Rand Index
// against it instead of the labels. -newick writes the full dendrogram in
// Newick format to the given file. -json prints the result as one JSON
// document — the same stable ResultJSON wire form pfg-serve responds with
// (Newick tree, canonical filtered-graph edges, labels at the -k cut) —
// instead of label lines.
//
// Follow mode flips the orientation for streaming: every CSV row is one tick
// (one observation per series, n columns), rows arrive in time order, and
// the tool re-clusters a rolling window as they do:
//
//	pfg-cluster -follow -window 256 -k 8 [-every 16] [-rebuild 256]
//	            [-log-slow-tick 50ms] ticks.csv
//
// ("-" reads ticks from stdin.) Once the window holds at least two samples,
// every -every ticks it prints one line "tick <t>: <labels...>", and a final
// snapshot at EOF. The rolling correlation state updates in O(n²) per tick
// instead of recomputing the O(n²·T) batch correlation; -rebuild is the
// drift-rebuild period K (exact recompute every K window slides).
// -log-slow-tick logs a per-stage breakdown to stderr (admit/roll/rebuild
// for pushes, finish/cluster for snapshots) whenever a tick or snapshot
// exceeds the threshold.
package main

import (
	"context"
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"pfg"
	"pfg/internal/dataio"
)

func main() {
	k := flag.Int("k", 0, "number of clusters to cut the dendrogram into (required)")
	method := flag.String("method", "tmfg-dbht", "clustering method: tmfg-dbht, pmfg-dbht, complete, average")
	prefix := flag.Int("prefix", 10, "TMFG construction prefix (1 = exact sequential TMFG)")
	labeled := flag.Bool("labeled", false, "treat the last column of each row as a class label")
	ari := flag.Bool("ari", false, "with -labeled: print the ARI against the labels instead of cluster ids")
	newick := flag.String("newick", "", "write the dendrogram in Newick format to this file")
	jsonOut := flag.Bool("json", false, "print the result as JSON (the pfg-serve ResultJSON wire form) instead of label lines")
	follow := flag.Bool("follow", false, "streaming mode: rows are ticks (one observation per series); re-cluster a rolling window")
	window := flag.Int("window", 256, "with -follow: rolling window length in ticks")
	every := flag.Int("every", 16, "with -follow: print a snapshot every this many ticks")
	rebuild := flag.Int("rebuild", 0, "with -follow: exact drift-rebuild period K in window slides (0 = default)")
	precision := flag.String("precision", "float64", "with -follow: moment storage mode, float64 (bit-exact) or float32 (half the memory bandwidth, ~1e-5 correlation error)")
	logSlowTick := flag.Duration("log-slow-tick", 0, "with -follow: log a per-stage breakdown for pushes or snapshots slower than this (0 = off)")
	flag.Parse()
	if *k < 1 || flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: pfg-cluster -k K [flags] data.csv")
		flag.PrintDefaults()
		os.Exit(2)
	}
	if *ari && !*labeled {
		fatal(fmt.Errorf("-ari requires -labeled"))
	}
	if *jsonOut && *ari {
		fatal(fmt.Errorf("-json and -ari are mutually exclusive"))
	}
	var m pfg.Method
	switch *method {
	case "tmfg-dbht":
		m = pfg.TMFGDBHT
	case "pmfg-dbht":
		m = pfg.PMFGDBHT
	case "complete":
		m = pfg.CompleteLinkage
	case "average":
		m = pfg.AverageLinkage
	default:
		fatal(fmt.Errorf("unknown method %q", *method))
	}
	opts := pfg.Options{Method: m, Prefix: *prefix}
	if *follow {
		if *labeled || *ari || *newick != "" || *jsonOut {
			fatal(fmt.Errorf("-follow does not support -labeled/-ari/-newick/-json"))
		}
		var prec pfg.Precision
		switch *precision {
		case "float64":
			prec = pfg.Float64
		case "float32":
			prec = pfg.Float32
		default:
			fatal(fmt.Errorf("unknown precision %q (want float64 or float32)", *precision))
		}
		fmt.Fprintf(os.Stderr, "pfg-cluster: compute kernels %s, %s moments\n", pfg.KernelISA(), prec)
		if err := runFollow(flag.Arg(0), *k, *window, *every, *rebuild, *logSlowTick, prec, opts); err != nil {
			fatal(err)
		}
		return
	}
	series, truth, err := dataio.ReadSeriesFile(flag.Arg(0), *labeled)
	if err != nil {
		fatal(err)
	}
	res, err := pfg.Cluster(series, opts)
	if err != nil {
		fatal(err)
	}
	labels, err := res.Cut(*k)
	if err != nil {
		fatal(err)
	}
	if *newick != "" {
		tree, err := res.Newick(nil)
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*newick, []byte(tree+"\n"), 0o644); err != nil {
			fatal(err)
		}
	}
	if *ari {
		v, err := pfg.ARI(truth, labels)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("ARI %.4f\n", v)
		return
	}
	if *jsonOut {
		view, err := res.JSON([]int{*k}, nil)
		if err != nil {
			fatal(err)
		}
		b, err := json.Marshal(view)
		if err != nil {
			fatal(err)
		}
		fmt.Println(string(b))
		return
	}
	for _, l := range labels {
		fmt.Println(l)
	}
}

// runFollow drives the streaming engine over a tick-oriented CSV: each row
// is one sample across all series, pushed in file order.
func runFollow(path string, k, window, every, rebuild int, slow time.Duration, prec pfg.Precision, opts pfg.Options) error {
	if every < 1 {
		return fmt.Errorf("-every must be ≥ 1, got %d", every)
	}
	var r io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	st, err := pfg.NewStreamer(window, pfg.StreamOptions{Cluster: opts, RebuildEvery: rebuild, Precision: prec})
	if err != nil {
		return err
	}
	defer st.Close()
	// With -log-slow-tick, install bare stages (no registry, no histograms):
	// each records only its last duration, which the breakdown lines below
	// read back. Without the flag the streamer stays fully uninstrumented
	// and never touches the clock.
	var met *pfg.StreamerMetrics
	if slow > 0 {
		met = pfg.NewStreamerMetrics()
		st.SetMetrics(met)
	}
	snapshotAt := func(tick int) error {
		var t0 time.Time
		if met != nil {
			t0 = time.Now()
		}
		res, err := st.Snapshot(context.Background())
		if err != nil {
			return fmt.Errorf("tick %d: %w", tick, err)
		}
		if met != nil {
			if el := time.Since(t0); el >= slow {
				fmt.Fprintf(os.Stderr, "pfg-cluster: slow snapshot tick=%d total=%s finish=%s cluster=%s\n",
					tick, el, met.SnapshotFinish.Last(), met.SnapshotCluster.Last())
			}
		}
		labels, err := res.Cut(k)
		if err != nil {
			return fmt.Errorf("tick %d: %w", tick, err)
		}
		parts := make([]string, len(labels))
		for i, l := range labels {
			parts[i] = fmt.Sprint(l)
		}
		fmt.Printf("tick %d: %s\n", tick, strings.Join(parts, " "))
		return nil
	}
	// Parse and push one row at a time so snapshots appear while a live
	// feed is still open (and memory stays bounded by the window).
	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	var x []float64
	tick, printed := 0, -1
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		if x == nil {
			// csv.Reader pins FieldsPerRecord to the first row's width, so
			// later rows are guaranteed the same arity.
			x = make([]float64, len(rec))
		}
		for i, cell := range rec {
			v, err := strconv.ParseFloat(cell, 64)
			if err != nil {
				return fmt.Errorf("tick %d col %d: %w", tick+1, i+1, err)
			}
			x[i] = v
		}
		var t0 time.Time
		if met != nil {
			t0 = time.Now()
		}
		if err := st.Push(x); err != nil {
			return fmt.Errorf("tick %d: %w", tick+1, err)
		}
		tick++
		if met != nil {
			if el := time.Since(t0); el >= slow {
				fmt.Fprintf(os.Stderr, "pfg-cluster: slow tick=%d total=%s admit=%s roll=%s rebuild=%s\n",
					tick, el, met.PushAdmit.Last(), met.PushRoll.Last(), met.Rebuild.Last())
			}
		}
		if st.Len() >= 2 && tick%every == 0 {
			if err := snapshotAt(tick); err != nil {
				return err
			}
			printed = tick
		}
	}
	if st.Len() < 2 {
		return fmt.Errorf("input held %d ticks; need at least 2 for a snapshot", tick)
	}
	if printed != tick { // final snapshot at EOF
		return snapshotAt(tick)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pfg-cluster:", err)
	os.Exit(1)
}
