// Command pfg-cluster hierarchically clusters time series from a CSV file
// (one series per row, equal lengths) and prints one cluster label per row.
//
// Usage:
//
//	pfg-cluster -k 8 [-method tmfg-dbht|pmfg-dbht|complete|average]
//	            [-prefix 10] [-labeled] [-ari] [-newick tree.nwk] data.csv
//
// With -labeled, the final column of each row is a ground-truth class label
// (ignored for clustering); adding -ari prints the Adjusted Rand Index
// against it instead of the labels. -newick writes the full dendrogram in
// Newick format to the given file.
package main

import (
	"flag"
	"fmt"
	"os"

	"pfg"
	"pfg/internal/dataio"
)

func main() {
	k := flag.Int("k", 0, "number of clusters to cut the dendrogram into (required)")
	method := flag.String("method", "tmfg-dbht", "clustering method: tmfg-dbht, pmfg-dbht, complete, average")
	prefix := flag.Int("prefix", 10, "TMFG construction prefix (1 = exact sequential TMFG)")
	labeled := flag.Bool("labeled", false, "treat the last column of each row as a class label")
	ari := flag.Bool("ari", false, "with -labeled: print the ARI against the labels instead of cluster ids")
	newick := flag.String("newick", "", "write the dendrogram in Newick format to this file")
	flag.Parse()
	if *k < 1 || flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: pfg-cluster -k K [flags] data.csv")
		flag.PrintDefaults()
		os.Exit(2)
	}
	if *ari && !*labeled {
		fatal(fmt.Errorf("-ari requires -labeled"))
	}
	series, truth, err := dataio.ReadSeriesFile(flag.Arg(0), *labeled)
	if err != nil {
		fatal(err)
	}
	var m pfg.Method
	switch *method {
	case "tmfg-dbht":
		m = pfg.TMFGDBHT
	case "pmfg-dbht":
		m = pfg.PMFGDBHT
	case "complete":
		m = pfg.CompleteLinkage
	case "average":
		m = pfg.AverageLinkage
	default:
		fatal(fmt.Errorf("unknown method %q", *method))
	}
	res, err := pfg.Cluster(series, pfg.Options{Method: m, Prefix: *prefix})
	if err != nil {
		fatal(err)
	}
	labels, err := res.Cut(*k)
	if err != nil {
		fatal(err)
	}
	if *newick != "" {
		tree, err := res.Newick(nil)
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*newick, []byte(tree+"\n"), 0o644); err != nil {
			fatal(err)
		}
	}
	if *ari {
		v, err := pfg.ARI(truth, labels)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("ARI %.4f\n", v)
		return
	}
	for _, l := range labels {
		fmt.Println(l)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pfg-cluster:", err)
	os.Exit(1)
}
