package main

// Smoke tests that build the real binary and drive it over fixture CSVs,
// asserting exit codes and parseable output — the integration layer the unit
// tests can't cover (flag wiring, CSV ingestion, process exit paths).

import (
	"bufio"
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"pfg"
	"pfg/internal/dataio"
	"pfg/internal/tsgen"
)

// buildBinary compiles pfg-cluster into a temp dir once per test run.
func buildBinary(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "pfg-cluster")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// writeFixture materializes a labeled series CSV (row per series) and its
// tick-oriented transpose (row per tick) for follow mode.
func writeFixture(t *testing.T, dir string) (seriesCSV, ticksCSV string, n, length int) {
	t.Helper()
	ds := tsgen.GenerateClassed("cli", 24, 40, 3, 0.4, 5)
	n, length = len(ds.Series), ds.Length
	seriesCSV = filepath.Join(dir, "series.csv")
	if err := dataio.WriteSeriesFile(seriesCSV, ds.Series, ds.Labels); err != nil {
		t.Fatal(err)
	}
	ticks := make([][]float64, length)
	for k := range ticks {
		row := make([]float64, n)
		for i := range row {
			row[i] = ds.Series[i][k]
		}
		ticks[k] = row
	}
	ticksCSV = filepath.Join(dir, "ticks.csv")
	if err := dataio.WriteSeriesFile(ticksCSV, ticks, nil); err != nil {
		t.Fatal(err)
	}
	return seriesCSV, ticksCSV, n, length
}

func TestCLISmoke(t *testing.T) {
	bin := buildBinary(t)
	dir := t.TempDir()
	seriesCSV, ticksCSV, n, length := writeFixture(t, dir)

	t.Run("batch", func(t *testing.T) {
		out, err := exec.Command(bin, "-k", "3", "-labeled", "-method", "complete", seriesCSV).Output()
		if err != nil {
			t.Fatalf("batch run failed: %v", err)
		}
		lines := nonEmptyLines(out)
		if len(lines) != n {
			t.Fatalf("%d label lines for %d series", len(lines), n)
		}
		for _, l := range lines {
			v, err := strconv.Atoi(l)
			if err != nil || v < 0 || v >= 3 {
				t.Fatalf("bad label line %q", l)
			}
		}
	})

	t.Run("batch-ari-newick", func(t *testing.T) {
		nwk := filepath.Join(dir, "tree.nwk")
		out, err := exec.Command(bin, "-k", "3", "-labeled", "-ari", "-newick", nwk, seriesCSV).Output()
		if err != nil {
			t.Fatalf("ari run failed: %v", err)
		}
		if !strings.HasPrefix(strings.TrimSpace(string(out)), "ARI ") {
			t.Fatalf("unexpected -ari output %q", out)
		}
		tree, err := os.ReadFile(nwk)
		if err != nil {
			t.Fatal(err)
		}
		if s := strings.TrimSpace(string(tree)); !strings.HasSuffix(s, ";") {
			t.Fatalf("newick file does not end with ';': %q", s)
		}
	})

	t.Run("batch-json", func(t *testing.T) {
		out, err := exec.Command(bin, "-k", "3", "-labeled", "-json", seriesCSV).Output()
		if err != nil {
			t.Fatalf("json run failed: %v", err)
		}
		var view pfg.ResultJSON
		if err := json.Unmarshal(out, &view); err != nil {
			t.Fatalf("output is not one JSON document: %v\n%s", err, out)
		}
		if view.N != n || len(view.Cuts["3"]) != n {
			t.Fatalf("bad JSON view: n=%d cuts=%v", view.N, view.Cuts)
		}
		if len(view.Edges) != 3*n-6 { // default method is tmfg-dbht
			t.Fatalf("%d edges, want %d", len(view.Edges), 3*n-6)
		}
		if !strings.HasSuffix(view.Newick, ";") {
			t.Fatalf("bad newick %q", view.Newick)
		}
	})

	t.Run("follow", func(t *testing.T) {
		window := length / 2
		out, err := exec.Command(bin, "-follow", "-k", "3", "-method", "complete",
			"-window", strconv.Itoa(window), "-every", "8", "-rebuild", "4", ticksCSV).Output()
		if err != nil {
			t.Fatalf("follow run failed: %v", err)
		}
		lines := nonEmptyLines(out)
		// Snapshots at ticks 8,16,...,length — at least every-th tick plus
		// the EOF snapshot rule.
		if want := length / 8; len(lines) < want {
			t.Fatalf("%d snapshot lines, want ≥ %d:\n%s", len(lines), want, out)
		}
		for _, l := range lines {
			rest, ok := strings.CutPrefix(l, "tick ")
			if !ok {
				t.Fatalf("bad snapshot line %q", l)
			}
			tickStr, labelStr, ok := strings.Cut(rest, ": ")
			if !ok {
				t.Fatalf("bad snapshot line %q", l)
			}
			if _, err := strconv.Atoi(tickStr); err != nil {
				t.Fatalf("bad tick in %q", l)
			}
			labels := strings.Fields(labelStr)
			if len(labels) != n {
				t.Fatalf("%d labels in %q, want %d", len(labels), l, n)
			}
			for _, s := range labels {
				if v, err := strconv.Atoi(s); err != nil || v < 0 || v >= 3 {
					t.Fatalf("bad label %q in %q", s, l)
				}
			}
		}
	})

	t.Run("follow-stdin", func(t *testing.T) {
		data, err := os.ReadFile(ticksCSV)
		if err != nil {
			t.Fatal(err)
		}
		cmd := exec.Command(bin, "-follow", "-k", "2", "-method", "average", "-window", "16", "-every", "40", "-")
		cmd.Stdin = bytes.NewReader(data)
		out, err := cmd.Output()
		if err != nil {
			t.Fatalf("stdin follow failed: %v", err)
		}
		if lines := nonEmptyLines(out); len(lines) != 1 { // 40 ticks → one snapshot at EOF
			t.Fatalf("want exactly the EOF snapshot, got %d lines:\n%s", len(lines), out)
		}
	})

	t.Run("errors", func(t *testing.T) {
		oneTick := filepath.Join(dir, "one_tick.csv")
		if err := os.WriteFile(oneTick, []byte("1,2,3\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		for _, args := range [][]string{
			{"-follow", "-k", "2", oneTick}, // under 2 ticks: clear error, not a crash
			{seriesCSV},                     // missing -k
			{"-k", "3", "-method", "bogus", seriesCSV},
			{"-k", "3", "-ari", seriesCSV},    // -ari without -labeled
			{"-k", "3", dir + "/missing.csv"}, // unreadable input
			{"-follow", "-k", "3", "-labeled", ticksCSV},
			{"-follow", "-k", "3", "-newick", dir + "/t.nwk", ticksCSV},
			{"-follow", "-k", "3", "-every", "0", ticksCSV},
			{"-follow", "-k", "3", "-window", "1", ticksCSV},
			{"-follow", "-k", "3", "-json", ticksCSV},
			{"-k", "3", "-labeled", "-ari", "-json", seriesCSV},
		} {
			if err := exec.Command(bin, args...).Run(); err == nil {
				t.Fatalf("args %v: expected non-zero exit", args)
			}
		}
	})
}

func nonEmptyLines(out []byte) []string {
	var lines []string
	sc := bufio.NewScanner(bytes.NewReader(out))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if s := strings.TrimSpace(sc.Text()); s != "" {
			lines = append(lines, s)
		}
	}
	return lines
}
