// Command pfg-datagen writes synthetic data sets to CSV for use with
// pfg-cluster or external tools. Each row is one series; the final column is
// the ground-truth class label.
//
// Usage:
//
//	pfg-datagen -dataset ECG5000 [-maxn 500] [-maxlen 128] [-seed 1] out.csv
//	pfg-datagen -stocks -n 400 -days 500 [-seed 1] out.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"pfg/internal/dataio"
	"pfg/internal/tsgen"
)

func main() {
	name := flag.String("dataset", "", "catalog data set name (see pfg-datagen -list)")
	list := flag.Bool("list", false, "list catalog data sets and exit")
	maxN := flag.Int("maxn", 500, "cap on object count (0 = paper size)")
	maxLen := flag.Int("maxlen", 256, "cap on series length (0 = paper size)")
	stocks := flag.Bool("stocks", false, "generate the synthetic stock panel instead")
	n := flag.Int("n", 400, "stock count (with -stocks)")
	days := flag.Int("days", 500, "trading days (with -stocks)")
	seed := flag.Int64("seed", 1, "generator seed")
	flag.Parse()

	if *list {
		for _, e := range tsgen.Catalog() {
			fmt.Printf("%2d  %-28s n=%-6d L=%-5d classes=%d\n", e.ID, e.Name, e.N, e.Length, e.Classes)
		}
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: pfg-datagen [flags] out.csv")
		flag.PrintDefaults()
		os.Exit(2)
	}
	if *stocks {
		sd := tsgen.GenerateStocks(*n, *days, *seed)
		if err := dataio.WriteSeriesFile(flag.Arg(0), sd.Returns, sd.Sector); err != nil {
			fatal(err)
		}
		return
	}
	var entry *tsgen.CatalogEntry
	for _, e := range tsgen.Catalog() {
		if e.Name == *name {
			e := e
			entry = &e
			break
		}
	}
	if entry == nil {
		fatal(fmt.Errorf("unknown dataset %q (use -list)", *name))
	}
	ds := tsgen.Generate(*entry, *maxN, *maxLen, *seed)
	if err := dataio.WriteSeriesFile(flag.Arg(0), ds.Series, ds.Labels); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pfg-datagen:", err)
	os.Exit(1)
}
