// Command pfg-experiments regenerates the tables and figures of the paper's
// evaluation section on synthetic workloads. Each figure is a subcommand;
// "all" runs everything (see DESIGN.md §3 for the experiment index).
//
// Usage:
//
//	pfg-experiments [-quick] [-maxn N] [-seed S] <experiment>...
//	pfg-experiments all
//
// Experiments: table2 fig1 fig3 fig4 fig5 fig6 fig7 fig8 fig9 fig10 fig11
// scaling appendix.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"pfg/internal/experiments"
)

var registry = []struct {
	name string
	fn   func(experiments.Config) string
}{
	{"table2", experiments.Table2},
	{"fig1", experiments.Fig1},
	{"fig3", experiments.Fig3},
	{"fig4", experiments.Fig4},
	{"fig5", experiments.Fig5},
	{"fig6", experiments.Fig6},
	{"fig7", experiments.Fig7},
	{"fig8", experiments.Fig8},
	{"fig9", experiments.Fig9},
	{"fig10", experiments.Fig10},
	{"fig11", experiments.Fig11},
	{"scaling", experiments.Scaling},
	{"appendix", experiments.Appendix},
	{"extras", experiments.Extras},
	{"ablation-apsp", experiments.AblationAPSP},
	{"ablation-cophenetic", experiments.AblationCophenetic},
	{"motivation", experiments.Motivation},
	{"ablation-footnote", experiments.AblationFootnote},
}

func main() {
	quick := flag.Bool("quick", false, "run a fast subset (small data, fewer prefixes)")
	maxN := flag.Int("maxn", 0, "override the per-dataset object cap")
	scaleN := flag.Int("scalen", 0, "override the scaling-experiment object count")
	seed := flag.Int64("seed", 0, "override the generator seed")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: pfg-experiments [flags] <experiment>...\n\nexperiments:\n")
		names := make([]string, 0, len(registry)+1)
		for _, r := range registry {
			names = append(names, r.name)
		}
		names = append(names, "all")
		fmt.Fprintf(os.Stderr, "  %s\n\nflags:\n", strings.Join(names, " "))
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}
	cfg := experiments.DefaultConfig()
	if *quick {
		cfg = experiments.QuickConfig()
	}
	if *maxN > 0 {
		cfg.MaxN = *maxN
	}
	if *scaleN > 0 {
		cfg.ScaleN = *scaleN
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	fmt.Printf("pfg-experiments: %d CPUs, quick=%v, maxn=%d, scalen=%d, seed=%d\n\n",
		runtime.NumCPU(), cfg.Quick, cfg.MaxN, cfg.ScaleN, cfg.Seed)
	want := map[string]bool{}
	for _, a := range flag.Args() {
		want[a] = true
	}
	ran := 0
	for _, r := range registry {
		if !want["all"] && !want[r.name] {
			continue
		}
		start := time.Now()
		fmt.Printf("=== %s ===\n", r.name)
		fmt.Println(r.fn(cfg))
		fmt.Printf("(%s took %.1fs)\n\n", r.name, time.Since(start).Seconds())
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "pfg-experiments: no matching experiments for %v\n", flag.Args())
		os.Exit(2)
	}
}
