package main

// Smoke tests that build the real pfg-serve binary, start it on an ephemeral
// port, drive the full session lifecycle over HTTP (create → push ticks →
// snapshot → stats), and exercise the graceful-shutdown signal path — the
// integration layer the internal/serve unit tests can't cover.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"

	"pfg"
	"pfg/internal/obs"
	"pfg/internal/tsgen"
)

func buildBinary(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "pfg-serve")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// startServer launches the binary on an ephemeral port and returns its base
// URL plus the running command (for the shutdown and restart tests). Extra
// flags (e.g. -state-dir) are appended to the baseline ones.
func startServer(t *testing.T, bin string, extra ...string) (string, *exec.Cmd) {
	t.Helper()
	args := append([]string{"-addr", "127.0.0.1:0", "-drain", "5s"}, extra...)
	cmd := exec.Command(bin, args...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})
	sc := bufio.NewScanner(stderr)
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, "pfg-serve: listening on "); ok {
			// Keep draining stderr so the process never blocks on a full pipe.
			go func() {
				for sc.Scan() {
				}
			}()
			return "http://" + strings.TrimSpace(rest), cmd
		}
	}
	t.Fatalf("server never announced its address (stderr closed: %v)", sc.Err())
	return "", nil
}

func postJSON(t *testing.T, url string, body any, wantStatus int, out any) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	if resp.StatusCode != wantStatus {
		t.Fatalf("POST %s: status %d, want %d; body %s", url, resp.StatusCode, wantStatus, buf.Bytes())
	}
	if out != nil {
		if err := json.Unmarshal(buf.Bytes(), out); err != nil {
			t.Fatalf("POST %s: bad body %s: %v", url, buf.Bytes(), err)
		}
	}
}

func getJSON(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d, body %s", url, resp.StatusCode, buf.Bytes())
	}
	if err := json.Unmarshal(buf.Bytes(), out); err != nil {
		t.Fatalf("GET %s: bad body %s: %v", url, buf.Bytes(), err)
	}
}

func TestServeSmoke(t *testing.T) {
	if testing.Short() {
		// The CI race step runs ./... with -short; this end-to-end (which
		// builds the binary and exercises the signal path) runs once in the
		// dedicated smoke step instead of twice.
		t.Skip("skipped under -short; run by the dedicated smoke step")
	}
	bin := buildBinary(t)
	base, cmd := startServer(t, bin)

	const n, window = 16, 24
	ds := tsgen.GenerateClassed("smoke", n, window, 3, 0.4, 7)

	// Create a session, push the whole window as one batch, snapshot it.
	postJSON(t, base+"/v1/sessions", map[string]any{
		"id": "smoke", "window": window, "method": "tmfg-dbht",
	}, http.StatusCreated, nil)

	samples := make([][]float64, window)
	for k := range samples {
		x := make([]float64, n)
		for i := range x {
			x[i] = ds.Series[i][k]
		}
		samples[k] = x
	}
	var push struct {
		Admitted   int    `json:"admitted"`
		Len        int    `json:"len"`
		Generation uint64 `json:"generation"`
	}
	postJSON(t, base+"/v1/sessions/smoke/push", map[string]any{"samples": samples}, http.StatusOK, &push)
	if push.Admitted != window || push.Len != window || push.Generation != window {
		t.Fatalf("bad push response: %+v", push)
	}

	var snap struct {
		Session    string          `json:"session"`
		Method     string          `json:"method"`
		Generation uint64          `json:"generation"`
		Result     *pfg.ResultJSON `json:"result"`
	}
	getJSON(t, base+fmt.Sprintf("/v1/sessions/smoke/snapshot?k=3"), &snap)
	if snap.Session != "smoke" || snap.Method != "tmfg-dbht" || snap.Generation != window {
		t.Fatalf("bad snapshot envelope: %+v", snap)
	}
	if snap.Result == nil || snap.Result.N != n || len(snap.Result.Cuts["3"]) != n ||
		len(snap.Result.Edges) != 3*n-6 || !strings.HasSuffix(snap.Result.Newick, ";") {
		t.Fatalf("bad snapshot result: %+v", snap.Result)
	}
	for _, l := range snap.Result.Cuts["3"] {
		if l < 0 || l >= 3 {
			t.Fatalf("label %d out of range", l)
		}
	}

	// Liveness and counters.
	var health struct {
		Status   string `json:"status"`
		Sessions int    `json:"sessions"`
	}
	getJSON(t, base+"/healthz", &health)
	if health.Status != "ok" || health.Sessions != 1 {
		t.Fatalf("bad healthz: %+v", health)
	}
	var stats struct {
		TicksPushed  uint64 `json:"ticks_pushed"`
		SnapshotRuns uint64 `json:"snapshot_runs"`
	}
	getJSON(t, base+"/statsz", &stats)
	if stats.TicksPushed != window || stats.SnapshotRuns != 1 {
		t.Fatalf("bad statsz: %+v", stats)
	}

	// Graceful shutdown: SIGTERM drains and exits 0.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("SIGTERM exit: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not exit after SIGTERM")
	}
}

// readSSE parses one Server-Sent Events frame off the stream.
func readSSE(t *testing.T, br *bufio.Reader) (name string, data []byte) {
	t.Helper()
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatalf("reading SSE frame: %v", err)
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case line == "" && name != "":
			return name, data
		case strings.HasPrefix(line, "event: "):
			name = line[len("event: "):]
		case strings.HasPrefix(line, "data: "):
			data = []byte(line[len("data: "):])
		}
	}
}

// TestServePushDelivery is the push-path end-to-end against the real binary:
// subscribe over SSE, push one tick, receive exactly one delta event, apply
// it locally, and land byte-identical to the full snapshot — then SIGTERM
// with the stream open, which must produce a terminal bye frame (the drain
// path) and a clean exit.
func TestServePushDelivery(t *testing.T) {
	if testing.Short() {
		t.Skip("skipped under -short; run by the dedicated smoke step")
	}
	bin := buildBinary(t)
	base, cmd := startServer(t, bin)

	const n, window = 16, 24
	ds := tsgen.GenerateClassed("push-e2e", n, window+1, 3, 0.4, 7)
	tick := func(k int) []float64 {
		x := make([]float64, n)
		for i := range x {
			x[i] = ds.Series[i][k]
		}
		return x
	}
	postJSON(t, base+"/v1/sessions", map[string]any{
		"id": "feed", "window": window, "method": "tmfg-dbht", "rebuild_every": -1,
	}, http.StatusCreated, nil)
	samples := make([][]float64, window)
	for k := range samples {
		samples[k] = tick(k)
	}
	postJSON(t, base+"/v1/sessions/feed/push", map[string]any{"samples": samples}, http.StatusOK, nil)

	resp, err := http.Get(base + "/v1/sessions/feed/events?k=3")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK || resp.Header.Get("Content-Type") != "text/event-stream" {
		t.Fatalf("subscribe: status %d, Content-Type %q", resp.StatusCode, resp.Header.Get("Content-Type"))
	}
	br := bufio.NewReader(resp.Body)
	name, data := readSSE(t, br)
	if name != "snapshot" {
		t.Fatalf("first event %q, want snapshot", name)
	}
	var baseSnap struct {
		Generation uint64          `json:"generation"`
		Result     *pfg.ResultJSON `json:"result"`
	}
	if err := json.Unmarshal(data, &baseSnap); err != nil {
		t.Fatal(err)
	}

	postJSON(t, base+"/v1/sessions/feed/push", map[string]any{"sample": tick(window)}, http.StatusOK, nil)
	name, data = readSSE(t, br)
	if name != "delta" {
		t.Fatalf("post-push event %q, want delta", name)
	}
	var dr struct {
		FromGeneration uint64               `json:"from_generation"`
		Generation     uint64               `json:"generation"`
		Delta          *pfg.ResultDeltaJSON `json:"delta"`
	}
	if err := json.Unmarshal(data, &dr); err != nil {
		t.Fatal(err)
	}
	if dr.FromGeneration != baseSnap.Generation || dr.Generation != baseSnap.Generation+1 {
		t.Fatalf("delta spans %d→%d, want %d→%d",
			dr.FromGeneration, dr.Generation, baseSnap.Generation, baseSnap.Generation+1)
	}
	rec, err := baseSnap.Result.ApplyDelta(dr.Delta)
	if err != nil {
		t.Fatal(err)
	}
	var full struct {
		Generation uint64          `json:"generation"`
		Result     *pfg.ResultJSON `json:"result"`
	}
	getJSON(t, base+"/v1/sessions/feed/snapshot?k=3", &full)
	got, _ := json.Marshal(rec)
	want, _ := json.Marshal(full.Result)
	if full.Generation != dr.Generation || !bytes.Equal(got, want) {
		t.Fatalf("delta reconstruction diverged from the snapshot\n got: %s\nwant: %s", got, want)
	}

	// SIGTERM with the stream open: drain must end it with a bye frame and
	// the process must still exit cleanly.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if name, _ = readSSE(t, br); name != "bye" {
		t.Fatalf("post-SIGTERM event %q, want bye", name)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("SIGTERM exit: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not exit after SIGTERM with an open event stream")
	}
}

// getBody fetches a URL and returns the raw response bytes — the unit of the
// restart tests' byte-identity assertions.
func getBody(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d, body %s", url, resp.StatusCode, buf.Bytes())
	}
	return buf.Bytes()
}

// restartTicks is the deterministic feed shared by both restart tests.
func restartTicks(t *testing.T, n, count int) [][]float64 {
	t.Helper()
	ds := tsgen.GenerateClassed("restart", n, count, 3, 0.4, 11)
	samples := make([][]float64, count)
	for k := range samples {
		x := make([]float64, n)
		for i := range x {
			x[i] = ds.Series[i][k]
		}
		samples[k] = x
	}
	return samples
}

// setupRestartSession creates the durable test session and pushes ticks in
// two batches sized so the second stays under the checkpoint cadence — its
// frames exist only in the WAL when the process dies.
func setupRestartSession(t *testing.T, base string, samples [][]float64) (gen uint64, body []byte) {
	t.Helper()
	postJSON(t, base+"/v1/sessions", map[string]any{
		"id": "restart", "window": 16, "workers": 1, "rebuild_every": 64,
	}, http.StatusCreated, nil)
	var push struct {
		Generation uint64 `json:"generation"`
	}
	postJSON(t, base+"/v1/sessions/restart/push", map[string]any{"samples": samples[:9]}, http.StatusOK, &push)
	postJSON(t, base+"/v1/sessions/restart/push", map[string]any{"samples": samples[9:14]}, http.StatusOK, &push)
	if push.Generation != 14 {
		t.Fatalf("generation %d after 14 pushes", push.Generation)
	}
	return push.Generation, getBody(t, base+"/v1/sessions/restart/snapshot?k=3")
}

// assertRecovered checks the relaunched server resumed the session at the
// expected generation with a byte-identical snapshot body.
func assertRecovered(t *testing.T, base string, wantGen uint64, wantBody []byte) {
	t.Helper()
	var info struct {
		Generation uint64 `json:"generation"`
		Len        int    `json:"len"`
	}
	getJSON(t, base+"/v1/sessions/restart", &info)
	if info.Generation != wantGen {
		t.Fatalf("recovered at generation %d, want %d", info.Generation, wantGen)
	}
	if got := getBody(t, base+"/v1/sessions/restart/snapshot?k=3"); !bytes.Equal(got, wantBody) {
		t.Fatalf("recovered snapshot body diverges:\n%s\nvs\n%s", got, wantBody)
	}
}

// TestServeRestart is the zero-downtime path against the real binary:
// create, push, SIGTERM (drain takes a final checkpoint), relaunch on the
// same -state-dir — same generation, byte-identical snapshot, nothing
// replayed.
func TestServeRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("skipped under -short; run by the dedicated smoke step")
	}
	bin := buildBinary(t)
	stateDir := t.TempDir()
	flags := []string{"-state-dir", stateDir, "-checkpoint-every", "6"}
	base, cmd := startServer(t, bin, flags...)
	samples := restartTicks(t, 12, 14)
	gen, body := setupRestartSession(t, base, samples)

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("SIGTERM exit: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not exit after SIGTERM")
	}

	base2, _ := startServer(t, bin, flags...)
	assertRecovered(t, base2, gen, body)
	var stats struct {
		Recovered uint64 `json:"recovered_sessions"`
		Replayed  uint64 `json:"wal_replayed_frames"`
	}
	getJSON(t, base2+"/statsz", &stats)
	if stats.Recovered != 1 {
		t.Fatalf("recovered_sessions = %d", stats.Recovered)
	}
	if stats.Replayed != 0 {
		t.Fatalf("clean drain still replayed %d frames", stats.Replayed)
	}
}

// TestServeRestartKill is the crash path: SIGKILL (no drain, no final
// checkpoint), relaunch — recovery comes from the last periodic checkpoint
// plus WAL replay and must land on the same generation and bytes.
func TestServeRestartKill(t *testing.T) {
	if testing.Short() {
		t.Skip("skipped under -short; run by the dedicated smoke step")
	}
	bin := buildBinary(t)
	stateDir := t.TempDir()
	flags := []string{"-state-dir", stateDir, "-checkpoint-every", "6"}
	base, cmd := startServer(t, bin, flags...)
	samples := restartTicks(t, 12, 14)
	gen, body := setupRestartSession(t, base, samples)

	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd.Wait() // non-zero exit expected

	base2, _ := startServer(t, bin, flags...)
	assertRecovered(t, base2, gen, body)
	var stats struct {
		Recovered uint64 `json:"recovered_sessions"`
		Replayed  uint64 `json:"wal_replayed_frames"`
	}
	getJSON(t, base2+"/statsz", &stats)
	if stats.Recovered != 1 {
		t.Fatalf("recovered_sessions = %d", stats.Recovered)
	}
	if stats.Replayed == 0 {
		t.Fatal("hard kill recovered without WAL replay")
	}
}

// driftBase holds the two group patterns of the drift test feed. Both are
// zero-mean over one period and weakly anti-correlated with each other
// (corr −0.1), so two clusters at cut 2 are unambiguous.
var driftBase = [2][4]float64{
	{1.0, 2.0, -1.0, -2.0},
	{2.0, -2.0, 1.0, -1.0},
}

// driftSample builds tick t of a strictly period-4 feed: series i follows
// its group's base pattern plus a small per-series period-4 perturbation
// (so no two series are affinely identical). With window 16 = 4 periods,
// every phase-aligned window holds exactly the same values — consecutive
// clustering runs 4 ticks apart see bit-identical inputs.
func driftSample(groups []int, t int) []float64 {
	x := make([]float64, len(groups))
	p := t % 4
	for i, g := range groups {
		eps := 0.01 * float64((i*7+p*3)%5-2)
		x[i] = driftBase[g][p] + eps
	}
	return x
}

// pushDriftTicks pushes count ticks starting at tick from, in batches of 4
// (keeping the window phase-aligned), and returns the next tick index.
func pushDriftTicks(t *testing.T, base string, groups []int, from, count int) int {
	t.Helper()
	for off := 0; off < count; off += 4 {
		batch := make([][]float64, 4)
		for j := range batch {
			batch[j] = driftSample(groups, from+off+j)
		}
		postJSON(t, base+"/v1/sessions/drift/push", map[string]any{"samples": batch}, http.StatusOK, nil)
	}
	return from + count
}

// validateExposition parses a Prometheus text exposition and checks its
// histogram invariants: every histogram series carries the full fixed bucket
// ladder, cumulative counts are monotone nondecreasing, and the le="+Inf"
// bucket equals the series' _count sample.
func validateExposition(t *testing.T, text string) {
	t.Helper()
	type key struct{ name, labels string }
	type ladder struct {
		n      int
		lastLE string
		prev   uint64
		inf    uint64
	}
	ladders := map[key]*ladder{}
	counts := map[key]uint64{}
	for _, line := range strings.Split(text, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("exposition line without a value: %q", line)
		}
		series, valStr := line[:sp], line[sp+1:]
		name, labels := series, ""
		if br := strings.IndexByte(series, '{'); br >= 0 {
			if !strings.HasSuffix(series, "}") {
				t.Fatalf("unterminated label set: %q", line)
			}
			name, labels = series[:br], series[br+1:len(series)-1]
		}
		switch {
		case strings.HasSuffix(name, "_bucket"):
			v, err := strconv.ParseUint(valStr, 10, 64)
			if err != nil {
				t.Fatalf("bad bucket count in %q: %v", line, err)
			}
			le := ""
			rest := labels
			if i := strings.Index(labels, `le="`); i >= 0 {
				tail := labels[i+len(`le="`):]
				j := strings.IndexByte(tail, '"')
				le = tail[:j]
				rest = strings.TrimSuffix(strings.TrimSuffix(labels[:i], ","), " ")
				rest = strings.TrimSuffix(rest, ",")
			} else {
				t.Fatalf("bucket sample without le: %q", line)
			}
			k := key{strings.TrimSuffix(name, "_bucket"), rest}
			l := ladders[k]
			if l == nil {
				l = &ladder{}
				ladders[k] = l
			}
			if v < l.prev {
				t.Fatalf("%s{%s}: bucket le=%q count %d below previous %d", k.name, k.labels, le, v, l.prev)
			}
			l.n++
			l.prev, l.lastLE = v, le
			if le == "+Inf" {
				l.inf = v
			}
		case strings.HasSuffix(name, "_count"):
			v, err := strconv.ParseUint(valStr, 10, 64)
			if err != nil {
				t.Fatalf("bad count in %q: %v", line, err)
			}
			counts[key{strings.TrimSuffix(name, "_count"), labels}] = v
		}
	}
	if len(ladders) == 0 {
		t.Fatal("exposition contains no histogram buckets")
	}
	for k, l := range ladders {
		if l.n != obs.NumBuckets {
			t.Fatalf("%s{%s}: %d buckets, want %d", k.name, k.labels, l.n, obs.NumBuckets)
		}
		if l.lastLE != "+Inf" {
			t.Fatalf("%s{%s}: last bucket le=%q, want +Inf", k.name, k.labels, l.lastLE)
		}
		c, ok := counts[k]
		if !ok {
			t.Fatalf("%s{%s}: no _count sample", k.name, k.labels)
		}
		if l.inf != c {
			t.Fatalf("%s{%s}: le=+Inf bucket %d != _count %d", k.name, k.labels, l.inf, c)
		}
	}
}

// TestServeMetricsDrift is the observability end-to-end against the real
// binary: /metricsz must parse as a valid Prometheus exposition with
// coherent histogram ladders, /driftz must report ARI 1 / zero churn across
// a generation whose window content is unchanged and ARI < 1 after a forced
// regime change, the drift record must ride SSE snapshot frames but never
// the GET /snapshot body, and the -debug-addr pprof mux must answer on its
// own port.
func TestServeMetricsDrift(t *testing.T) {
	if testing.Short() {
		t.Skip("skipped under -short; run by the dedicated smoke step")
	}
	bin := buildBinary(t)

	// Reserve a port for the debug listener, then hand it to the server.
	dln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	debugAddr := dln.Addr().String()
	dln.Close()
	base, _ := startServer(t, bin, "-debug-addr", debugAddr, "-log-slow-tick", "1h")

	groups := []int{0, 0, 0, 0, 1, 1, 1, 1}
	postJSON(t, base+"/v1/sessions", map[string]any{
		"id": "drift", "window": 16, "rebuild_every": 4, "drift_cut": 2,
	}, http.StatusCreated, nil)

	// Fill the window (4 periods of the period-4 feed) and cluster it: the
	// first computed generation has no predecessor, so no drift yet. The
	// generation stamp is read back rather than assumed: it advances on
	// every admitted tick AND on every periodic rebuild.
	var snap struct {
		Generation uint64 `json:"generation"`
	}
	tick := pushDriftTicks(t, base, groups, 0, 16)
	getJSON(t, base+"/v1/sessions/drift/snapshot?k=2", &snap)
	gen1 := snap.Generation
	var dz struct {
		Sessions []struct {
			ID         string `json:"id"`
			Generation uint64 `json:"generation"`
			Drift      *struct {
				FromGeneration uint64  `json:"from_generation"`
				ARI            float64 `json:"ari"`
				EdgesAdded     int     `json:"edges_added"`
				EdgesRemoved   int     `json:"edges_removed"`
				Cut            int     `json:"cut"`
			} `json:"drift"`
		} `json:"sessions"`
	}
	getJSON(t, base+"/driftz", &dz)
	if len(dz.Sessions) != 1 || dz.Sessions[0].ID != "drift" || dz.Sessions[0].Generation != gen1 {
		t.Fatalf("driftz after first run (gen %d): %+v", gen1, dz.Sessions)
	}
	if dz.Sessions[0].Drift != nil {
		t.Fatalf("drift record before a second generation: %+v", dz.Sessions[0].Drift)
	}

	// One more period: the window slides by exactly 4 ticks of a period-4
	// feed, so its content — and the clustering — is unchanged.
	tick = pushDriftTicks(t, base, groups, tick, 4)
	body := getBody(t, base+"/v1/sessions/drift/snapshot?k=2")
	if bytes.Contains(body, []byte(`"drift":{`)) {
		t.Fatalf("GET /snapshot body carries a drift field (must stay a pure function of window state):\n%s", body)
	}
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatal(err)
	}
	gen2 := snap.Generation
	getJSON(t, base+"/driftz", &dz)
	d := dz.Sessions[0].Drift
	if dz.Sessions[0].Generation != gen2 || d == nil {
		t.Fatalf("driftz after unchanged-window run (gen %d): %+v", gen2, dz.Sessions[0])
	}
	if d.FromGeneration != gen1 || d.ARI != 1 || d.EdgesAdded != 0 || d.EdgesRemoved != 0 || d.Cut != 2 {
		t.Fatalf("unchanged window must drift ARI=1/churn=0 from gen %d, got %+v", gen1, d)
	}

	// Regime change: half of each group swaps sides, and 32 ticks flush the
	// old regime out of the 16-tick window entirely.
	regime2 := []int{0, 0, 1, 1, 1, 1, 0, 0}
	pushDriftTicks(t, base, regime2, tick, 32)
	getJSON(t, base+"/v1/sessions/drift/snapshot?k=2", &snap)
	gen3 := snap.Generation
	getJSON(t, base+"/driftz", &dz)
	d = dz.Sessions[0].Drift
	if dz.Sessions[0].Generation != gen3 || d == nil || d.FromGeneration != gen2 {
		t.Fatalf("driftz after regime change (gen %d→%d): %+v", gen2, gen3, dz.Sessions[0])
	}
	if d.ARI >= 1 {
		t.Fatalf("regime change must move the labeling (ARI < 1), got %+v", d)
	}

	// The same record rides the SSE snapshot frame (but, per above, not the
	// GET body).
	resp, err := http.Get(base + "/v1/sessions/drift/events?k=2")
	if err != nil {
		t.Fatal(err)
	}
	name, data := readSSE(t, bufio.NewReader(resp.Body))
	resp.Body.Close()
	if name != "snapshot" {
		t.Fatalf("first SSE event %q, want snapshot", name)
	}
	var sseSnap struct {
		Generation uint64 `json:"generation"`
		Drift      *struct {
			FromGeneration uint64  `json:"from_generation"`
			ARI            float64 `json:"ari"`
		} `json:"drift"`
	}
	if err := json.Unmarshal(data, &sseSnap); err != nil {
		t.Fatalf("SSE snapshot frame: %v\n%s", err, data)
	}
	if sseSnap.Generation != gen3 || sseSnap.Drift == nil ||
		sseSnap.Drift.FromGeneration != gen2 || sseSnap.Drift.ARI != d.ARI {
		t.Fatalf("SSE snapshot frame drift: %+v (want from=%d ari=%v)", sseSnap.Drift, gen2, d.ARI)
	}

	// /metricsz: a valid exposition whose counters agree with the traffic.
	mresp, err := http.Get(base + "/metricsz")
	if err != nil {
		t.Fatal(err)
	}
	ct := mresp.Header.Get("Content-Type")
	mb, err := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("metricsz Content-Type %q", ct)
	}
	text := string(mb)
	for _, want := range []string{
		"# HELP pfg_ticks_pushed_total ",
		"# TYPE pfg_ticks_pushed_total counter",
		"# TYPE pfg_sessions gauge",
		"# TYPE pfg_push_batch_ns histogram",
		"\npfg_ticks_pushed_total 52\n",
		"\npfg_sessions 1\n",
		"pfg_tick_stage_ns_bucket{stage=\"roll\",le=\"+Inf\"}",
		"pfg_snapshot_request_ns_bucket{source=\"miss\",le=\"+Inf\"}",
		"pfg_session_drift_ari{session=\"drift\"} ",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metricsz missing %q:\n%s", want, text)
		}
	}
	validateExposition(t, text)

	// The pprof mux answers on the debug port, not the API port.
	var dresp *http.Response
	for i := 0; i < 100; i++ {
		dresp, err = http.Get("http://" + debugAddr + "/debug/pprof/")
		if err == nil {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("debug listener never answered: %v", err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/pprof/ on debug port: status %d", dresp.StatusCode)
	}
	if apiResp, err := http.Get(base + "/debug/pprof/"); err == nil {
		apiResp.Body.Close()
		if apiResp.StatusCode == http.StatusOK {
			t.Fatal("pprof reachable on the public API port")
		}
	}
}
