// Command pfg-serve is the multi-session HTTP serving layer: it hosts many
// named streaming sessions (rolling-window feeds clustered on demand) behind
// a JSON API with a coalesced snapshot cache and admission control.
//
// Usage:
//
//	pfg-serve [-addr :8866] [-max-inflight N] [-max-body-bytes B] [-drain 10s]
//
// Endpoints (see internal/serve for the wire contract):
//
//	POST   /v1/sessions                 {"id":"feed","window":4096,"method":"tmfg-dbht"}
//	POST   /v1/sessions/{id}/push       {"sample":[...]} or {"samples":[[...],...]}
//	GET    /v1/sessions/{id}/snapshot   ?k=8 — cluster the current window
//	                                    (If-Generation / ?if_generation= + ?wait= → 304 / long-poll)
//	GET    /v1/sessions/{id}/events     SSE stream: full snapshots + sparse deltas per update
//	GET    /v1/sessions /v1/sessions/{id}   list / inspect
//	DELETE /v1/sessions/{id}            delete
//	GET    /healthz /statsz             liveness, counters and latencies
//
// Concurrent snapshot readers of one window state share a single clustering
// run (singleflight, generation-keyed cache); -max-inflight bounds the
// clustering runs in flight across all sessions, beyond which readers get
// 429 + Retry-After. On SIGINT/SIGTERM the server stops accepting
// connections, drains in-flight requests for up to -drain, then cancels any
// still-running computations and exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pfg"
	"pfg/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8866", "listen address (host:port; port 0 picks a free port)")
	maxInflight := flag.Int("max-inflight", 0, "max concurrent snapshot clustering runs (0 = GOMAXPROCS)")
	maxBody := flag.Int64("max-body-bytes", 0, "request body size cap in bytes (0 = 8 MiB)")
	drain := flag.Duration("drain", 10*time.Second, "graceful-shutdown drain timeout")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: pfg-serve [flags]")
		flag.PrintDefaults()
		os.Exit(2)
	}

	srv := serve.New(serve.Options{MaxInflight: *maxInflight, MaxBodyBytes: *maxBody})
	hs := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	// Listen explicitly (rather than ListenAndServe) so the resolved
	// address — in particular a :0-assigned port — can be announced; the
	// smoke tests and scripts scrape it.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	// The kernel line is informational; the "listening on" line below is a
	// scraped interface (smoke tests and scripts parse the address) and must
	// keep its exact format.
	fmt.Fprintf(os.Stderr, "pfg-serve: compute kernels %s\n", pfg.KernelISA())
	fmt.Fprintf(os.Stderr, "pfg-serve: listening on %s\n", ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	select {
	case err := <-errc:
		// The listener failed outright (Serve never returns nil).
		fatal(err)
	case <-ctx.Done():
	}
	stop() // restore default signal behavior: a second ^C kills the drain

	// Drain ends the endless in-flight requests (SSE event streams get a
	// terminal "bye" frame, parked long-polls return 304) so Shutdown can
	// drain the finite ones — including snapshot waits — then Close cancels
	// whatever still runs and closes every session.
	fmt.Fprintln(os.Stderr, "pfg-serve: draining")
	srv.Drain()
	shutCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := hs.Shutdown(shutCtx); err != nil {
		fmt.Fprintln(os.Stderr, "pfg-serve: drain incomplete:", err)
	}
	srv.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pfg-serve:", err)
	os.Exit(1)
}
