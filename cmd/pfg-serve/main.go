// Command pfg-serve is the multi-session HTTP serving layer: it hosts many
// named streaming sessions (rolling-window feeds clustered on demand) behind
// a JSON API with a coalesced snapshot cache and admission control.
//
// Usage:
//
//	pfg-serve [-addr :8866] [-max-inflight N] [-max-body-bytes B] [-drain 10s]
//	          [-state-dir DIR] [-checkpoint-every N] [-fsync batch|always|none]
//	          [-debug-addr :6060] [-log-slow-tick 50ms]
//
// Endpoints (see internal/serve for the wire contract):
//
//	POST   /v1/sessions                 {"id":"feed","window":4096,"method":"tmfg-dbht"}
//	POST   /v1/sessions/{id}/push       {"sample":[...]} or {"samples":[[...],...]}
//	GET    /v1/sessions/{id}/snapshot   ?k=8 — cluster the current window
//	                                    (If-Generation / ?if_generation= + ?wait= → 304 / long-poll)
//	GET    /v1/sessions/{id}/events     SSE stream: full snapshots + sparse deltas per update
//	GET    /v1/sessions /v1/sessions/{id}   list / inspect
//	DELETE /v1/sessions/{id}            delete
//	GET    /healthz /statsz             liveness, counters and latencies
//	GET    /metricsz                    Prometheus text exposition of the same
//	GET    /driftz                      per-session structure-drift signal
//
// Concurrent snapshot readers of one window state share a single clustering
// run (singleflight, generation-keyed cache); -max-inflight bounds the
// clustering runs in flight across all sessions, beyond which readers get
// 429 + Retry-After. On SIGINT/SIGTERM the server stops accepting
// connections, drains in-flight requests for up to -drain, then cancels any
// still-running computations and exits.
//
// With -state-dir set, sessions are durable: each one checkpoints its full
// window state every -checkpoint-every pushes and write-ahead-logs the
// pushes in between (fsync per the -fsync policy), the drain sequence takes
// a final checkpoint of every session, and the next start with the same
// -state-dir restores them — same generations, byte-identical snapshots —
// whether the previous process drained cleanly or was killed outright.
//
// -debug-addr serves net/http/pprof on a separate listener and mux, so the
// profiling surface never shares a port with the public API; -log-slow-tick
// logs a one-line per-stage breakdown (admit/roll/rebuild, or the snapshot
// finish/cluster/incremental stages) for any push or clustering run that
// exceeds the threshold.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pfg"
	"pfg/internal/ckpt"
	"pfg/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8866", "listen address (host:port; port 0 picks a free port)")
	maxInflight := flag.Int("max-inflight", 0, "max concurrent snapshot clustering runs (0 = GOMAXPROCS)")
	maxBody := flag.Int64("max-body-bytes", 0, "request body size cap in bytes (0 = 8 MiB)")
	drain := flag.Duration("drain", 10*time.Second, "graceful-shutdown drain timeout")
	stateDir := flag.String("state-dir", "", "session durability directory (empty = sessions die with the process)")
	ckptEvery := flag.Int("checkpoint-every", 0, "checkpoint cadence in admitted pushes per session (0 = 64)")
	fsyncMode := flag.String("fsync", "batch", "WAL fsync policy: batch (per push request), always (per tick), none")
	debugAddr := flag.String("debug-addr", "", "serve net/http/pprof on this separate address (empty = no debug listener)")
	logSlowTick := flag.Duration("log-slow-tick", 0, "log a per-stage breakdown for pushes and clustering runs slower than this (0 = off)")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: pfg-serve [flags]")
		flag.PrintDefaults()
		os.Exit(2)
	}
	fsync, err := ckpt.ParseSyncPolicy(*fsyncMode)
	if err != nil {
		fatal(err)
	}

	srv := serve.New(serve.Options{
		MaxInflight:     *maxInflight,
		MaxBodyBytes:    *maxBody,
		StateDir:        *stateDir,
		CheckpointEvery: *ckptEvery,
		Fsync:           fsync,
		LogSlowTick:     *logSlowTick,
	})
	if *stateDir != "" {
		// Boot-time recovery: restore every session the previous process
		// left behind (final checkpoints from a clean drain, or checkpoint
		// + WAL replay after a hard kill) before accepting traffic.
		n, err := srv.Recover()
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "pfg-serve: recovered %d session(s) from %s\n", n, *stateDir)
	}
	hs := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	// Listen explicitly (rather than ListenAndServe) so the resolved
	// address — in particular a :0-assigned port — can be announced; the
	// smoke tests and scripts scrape it.
	ln, lnErr := net.Listen("tcp", *addr)
	if lnErr != nil {
		fatal(lnErr)
	}
	// The kernel line is informational; the "listening on" line below is a
	// scraped interface (smoke tests and scripts parse the address) and must
	// keep its exact format.
	fmt.Fprintf(os.Stderr, "pfg-serve: compute kernels %s\n", pfg.KernelISA())
	fmt.Fprintf(os.Stderr, "pfg-serve: listening on %s\n", ln.Addr())

	var ds *http.Server
	if *debugAddr != "" {
		// pprof gets its own mux on its own listener so the profiling
		// surface (heap dumps, CPU profiles, execution traces) is never
		// reachable through the public API port. The handlers are registered
		// explicitly rather than through net/http/pprof's DefaultServeMux
		// side effect, which the public handler never consults anyway.
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "pfg-serve: debug listening on %s\n", dln.Addr())
		ds = &http.Server{Handler: dmux, ReadHeaderTimeout: 10 * time.Second}
		go ds.Serve(dln)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	select {
	case err := <-errc:
		// The listener failed outright (Serve never returns nil).
		fatal(err)
	case <-ctx.Done():
	}
	stop() // restore default signal behavior: a second ^C kills the drain

	// Drain ends the endless in-flight requests (SSE event streams get a
	// terminal "bye" frame, parked long-polls return 304) so Shutdown can
	// drain the finite ones — including snapshot waits — then Close cancels
	// whatever still runs and closes every session.
	fmt.Fprintln(os.Stderr, "pfg-serve: draining")
	srv.Drain()
	shutCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := hs.Shutdown(shutCtx); err != nil {
		fmt.Fprintln(os.Stderr, "pfg-serve: drain incomplete:", err)
	}
	if *stateDir != "" {
		// The listener has drained, so no push is in flight: the final
		// checkpoints capture every session's landing state, and the next
		// boot recovers with nothing to replay.
		n := srv.CheckpointAll()
		fmt.Fprintf(os.Stderr, "pfg-serve: checkpointed %d session(s)\n", n)
	}
	srv.Close()
	if ds != nil {
		// Profiling requests don't participate in the drain; just drop them.
		ds.Close()
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pfg-serve:", err)
	os.Exit(1)
}
