package pfg

// Benchmark harness: one benchmark per table/figure of the paper's
// evaluation (see DESIGN.md §3), plus micro-benchmarks for the substrates.
// Run everything with:
//
//	go test -bench=. -benchmem
//
// Figure-level benchmarks use the synthetic workloads from internal/tsgen;
// the pretty-table variants of the same experiments live in
// cmd/pfg-experiments.

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"pfg/internal/core"
	"pfg/internal/graph"
	"pfg/internal/hac"
	"pfg/internal/matrix"
	"pfg/internal/metrics"
	"pfg/internal/mst"
	"pfg/internal/parallel"
	"pfg/internal/pmfg"
	"pfg/internal/tmfg"
	"pfg/internal/tsgen"
)

// benchData caches generated workloads across benchmark iterations.
var benchCache = map[string]*benchWorkload{}

type benchWorkload struct {
	ds       *tsgen.Dataset
	sim, dis *matrix.Sym
}

func workload(b *testing.B, name string, n, l, classes int, noise float64) *benchWorkload {
	b.Helper()
	key := fmt.Sprintf("%s-%d-%d-%d-%f", name, n, l, classes, noise)
	if w, ok := benchCache[key]; ok {
		return w
	}
	ds := tsgen.GenerateClassed(name, n, l, classes, noise, 42)
	sim, dis, err := core.Correlate(ds.Series)
	if err != nil {
		b.Fatal(err)
	}
	w := &benchWorkload{ds: ds, sim: sim, dis: dis}
	benchCache[key] = w
	return w
}

// --- Figure 1 / Figure 3: per-method runtimes -------------------------------

func BenchmarkFig1_TMFGDBHT_Prefix1(b *testing.B) {
	w := workload(b, "ecg", 500, 140, 5, 0.8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := core.TMFGDBHT(w.sim, w.dis, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig1_TMFGDBHT_Prefix10(b *testing.B) {
	w := workload(b, "ecg", 500, 140, 5, 0.8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := core.TMFGDBHT(w.sim, w.dis, 10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig1_PMFGDBHT(b *testing.B) {
	w := workload(b, "pmfg", 250, 140, 5, 0.8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := core.PMFGDBHT(w.sim, w.dis); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig1_CompleteLinkage(b *testing.B) {
	w := workload(b, "ecg", 500, 140, 5, 0.8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := core.HAC(w.dis, hac.Complete); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig1_AverageLinkage(b *testing.B) {
	w := workload(b, "ecg", 500, 140, 5, 0.8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := core.HAC(w.dis, hac.Average); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig3_KMeans(b *testing.B) {
	w := workload(b, "ecg", 500, 140, 5, 0.8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := core.KMeans(w.ds.Series, w.ds.NumClasses, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig3_KMeansSpectral(b *testing.B) {
	w := workload(b, "ecg", 500, 140, 5, 0.8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := core.KMeansSpectral(w.ds.Series, w.ds.NumClasses, 50, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 4: thread scaling by prefix (vary GOMAXPROCS externally or use
// the sub-benchmarks below, which sweep worker counts) -----------------------

func BenchmarkFig4_ThreadScaling(b *testing.B) {
	w := workload(b, "crop", 1500, 46, 24, 1.0)
	for _, prefix := range []int{1, 10, 50, 200} {
		for _, threads := range []int{1, 4, runtime.NumCPU()} {
			b.Run(fmt.Sprintf("prefix=%d/threads=%d", prefix, threads), func(b *testing.B) {
				old := runtime.GOMAXPROCS(threads)
				defer runtime.GOMAXPROCS(old)
				for i := 0; i < b.N; i++ {
					if _, err := core.TMFGDBHT(w.sim, w.dis, prefix); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// --- Figure 5: stage breakdown (per-stage timers are asserted in unit tests;
// this bench exposes the stages as sub-benchmarks) ---------------------------

func BenchmarkFig5_TMFGOnly(b *testing.B) {
	w := workload(b, "ecg", 800, 140, 5, 0.8)
	for _, prefix := range []int{1, 10, 50} {
		b.Run(fmt.Sprintf("prefix=%d", prefix), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := tmfg.Build(w.sim, prefix); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkFig5_APSP(b *testing.B) {
	w := workload(b, "ecg", 800, 140, 5, 0.8)
	tm, err := tmfg.Build(w.sim, 10)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tm.Graph.AllPairsShortestPaths()
	}
}

// --- Figures 6/7: quality and edge-weight ratio by prefix -------------------

func BenchmarkFig6_QualityByPrefix(b *testing.B) {
	w := workload(b, "quality", 600, 96, 8, 0.5)
	for _, prefix := range []int{1, 10, 50} {
		b.Run(fmt.Sprintf("prefix=%d", prefix), func(b *testing.B) {
			var lastARI float64
			for i := 0; i < b.N; i++ {
				r, err := core.TMFGDBHT(w.sim, w.dis, prefix)
				if err != nil {
					b.Fatal(err)
				}
				labels, err := r.CutLabels(w.ds.NumClasses)
				if err != nil {
					b.Fatal(err)
				}
				lastARI, _ = metrics.ARI(w.ds.Labels, labels)
			}
			b.ReportMetric(lastARI, "ARI")
		})
	}
}

func BenchmarkFig7_EdgeWeight(b *testing.B) {
	w := workload(b, "quality", 600, 96, 8, 0.5)
	exact, err := tmfg.Build(w.sim, 1)
	if err != nil {
		b.Fatal(err)
	}
	base := exact.EdgeWeightSum(w.sim)
	for _, prefix := range []int{10, 50, 200} {
		b.Run(fmt.Sprintf("prefix=%d", prefix), func(b *testing.B) {
			var ratio float64
			for i := 0; i < b.N; i++ {
				r, err := tmfg.Build(w.sim, prefix)
				if err != nil {
					b.Fatal(err)
				}
				ratio = r.EdgeWeightSum(w.sim) / base
			}
			b.ReportMetric(ratio, "weight-ratio")
		})
	}
}

// --- Figure 10: stock pipeline ----------------------------------------------

func BenchmarkFig10_StockPipeline(b *testing.B) {
	sd := tsgen.GenerateStocks(400, 300, 3)
	sim, dis, err := core.Correlate(sd.Returns)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := core.TMFGDBHT(sim, dis, 30)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := r.CutLabels(len(tsgen.SectorNames)); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Substrate micro-benchmarks ----------------------------------------------

func BenchmarkMicro_Pearson(b *testing.B) {
	ds := tsgen.GenerateClassed("micro", 1000, 128, 4, 0.5, 1)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := matrix.Pearson(ds.Series); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMicro_TMFGBuild(b *testing.B) {
	for _, n := range []int{500, 2000} {
		for _, prefix := range []int{1, 50} {
			b.Run(fmt.Sprintf("n=%d/prefix=%d", n, prefix), func(b *testing.B) {
				rng := rand.New(rand.NewSource(1))
				s := matrix.NewSym(n)
				for i := 0; i < n; i++ {
					s.Set(i, i, 1)
					for j := i + 1; j < n; j++ {
						s.Set(i, j, rng.Float64())
					}
				}
				b.ResetTimer()
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := tmfg.Build(s, prefix); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

func BenchmarkMicro_PMFGBuild(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n := 200
	s := matrix.NewSym(n)
	for i := 0; i < n; i++ {
		s.Set(i, i, 1)
		for j := i + 1; j < n; j++ {
			s.Set(i, j, rng.Float64())
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pmfg.Build(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMicro_HACComplete(b *testing.B) {
	w := workload(b, "micro", 1000, 64, 4, 0.5)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := core.HAC(w.dis, hac.Complete); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMicro_APSPByGraphSize(b *testing.B) {
	for _, n := range []int{500, 2000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			s := matrix.NewSym(n)
			for i := 0; i < n; i++ {
				s.Set(i, i, 1)
				for j := i + 1; j < n; j++ {
					s.Set(i, j, rng.Float64())
				}
			}
			tm, err := tmfg.Build(s, 50)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tm.Graph.AllPairsShortestPaths()
			}
		})
	}
}

func BenchmarkMicro_ARI(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n := 100000
	x := make([]int, n)
	y := make([]int, n)
	for i := range x {
		x[i] = rng.Intn(20)
		y[i] = rng.Intn(20)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := metrics.ARI(x, y); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblation_APSPDeltaStepping(b *testing.B) {
	w := workload(b, "ecg", 800, 140, 5, 0.8)
	tm, err := tmfg.Build(w.sim, 10)
	if err != nil {
		b.Fatal(err)
	}
	edges := tm.Graph.Edges()
	for i := range edges {
		edges[i].W = w.dis.At(int(edges[i].U), int(edges[i].V))
	}
	dg, err := graph.FromEdges(800, edges)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dg.AllPairsShortestPathsDelta(0)
	}
}

func BenchmarkMicro_MSTSingleLinkage(b *testing.B) {
	w := workload(b, "micro", 1000, 64, 4, 0.5)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := mst.SingleLinkage(w.dis); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMicro_ParallelIntSort(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n := 1 << 20
	base := make([]int32, n)
	for i := range base {
		base[i] = int32(rng.Intn(1024))
	}
	buf := make([]int32, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, base)
		parallel.SortInt32ByKey(buf, func(x int32) int32 { return x }, 1024)
	}
}
