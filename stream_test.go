package pfg

import (
	"context"
	"math"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"pfg/internal/tsgen"
)

// tickStream transposes a tsgen dataset into per-tick samples: tick t holds
// one observation per series.
func tickStream(t *testing.T, n, count int, seed int64) [][]float64 {
	t.Helper()
	ds := tsgen.GenerateClassed("stream", n, count, 3, 0.5, seed)
	out := make([][]float64, count)
	for k := range out {
		x := make([]float64, n)
		for i := range x {
			x[i] = ds.Series[i][k]
		}
		out[k] = x
	}
	return out
}

// windowSeries reconstructs the batch-equivalent input for the streamer's
// current window: the last min(pushed, window) ticks, one row per series.
func windowSeries(stream [][]float64, pushed, window, n int) [][]float64 {
	lo := pushed - window
	if lo < 0 {
		lo = 0
	}
	series := make([][]float64, n)
	for i := range series {
		row := make([]float64, pushed-lo)
		for k := lo; k < pushed; k++ {
			row[k-lo] = stream[k][i]
		}
		series[i] = row
	}
	return series
}

// sameResult asserts two results are bit-identical through the public
// surface: cut labels, Newick serialization (which embeds every merge and
// height), the edge weight sum, and the group count.
func sameResult(t *testing.T, tag string, got, want *Result, k int) {
	t.Helper()
	gl, err := got.Cut(k)
	if err != nil {
		t.Fatalf("%s: cut streaming: %v", tag, err)
	}
	wl, err := want.Cut(k)
	if err != nil {
		t.Fatalf("%s: cut batch: %v", tag, err)
	}
	for i := range gl {
		if gl[i] != wl[i] {
			t.Fatalf("%s: label[%d] = %d, batch %d", tag, i, gl[i], wl[i])
		}
	}
	gn, err := got.Newick(nil)
	if err != nil {
		t.Fatal(err)
	}
	wn, err := want.Newick(nil)
	if err != nil {
		t.Fatal(err)
	}
	if gn != wn {
		t.Fatalf("%s: newick differs:\nstream %s\nbatch  %s", tag, gn, wn)
	}
	if math.Float64bits(got.EdgeWeightSum) != math.Float64bits(want.EdgeWeightSum) {
		t.Fatalf("%s: EdgeWeightSum %v != %v", tag, got.EdgeWeightSum, want.EdgeWeightSum)
	}
	if got.Groups != want.Groups {
		t.Fatalf("%s: Groups %d != %d", tag, got.Groups, want.Groups)
	}
}

// TestStreamerMatchesBatch is the streaming equivalence property: W pushes
// followed by Snapshot is bit-identical (Workers:1) to batch Cluster on the
// same window, for every method, and the identity survives — and is restored
// by — drift rebuilds (both the periodic every-K rebuild and a forced one).
func TestStreamerMatchesBatch(t *testing.T) {
	const n, window, K, k = 12, 24, 8, 3
	stream := tickStream(t, n, window+2*K+3, 31)
	for _, m := range []Method{TMFGDBHT, PMFGDBHT, CompleteLinkage, AverageLinkage} {
		t.Run(m.String(), func(t *testing.T) {
			opts := Options{Method: m, Prefix: 2, Workers: 1}
			st, err := NewStreamer(window, StreamOptions{Cluster: opts, RebuildEvery: K})
			if err != nil {
				t.Fatal(err)
			}
			defer st.Close()
			ctx := context.Background()
			check := func(tag string, pushed int) {
				t.Helper()
				snap, err := st.Snapshot(ctx)
				if err != nil {
					t.Fatalf("%s: snapshot: %v", tag, err)
				}
				batch, err := Cluster(windowSeries(stream, pushed, window, n), opts)
				if err != nil {
					t.Fatalf("%s: batch: %v", tag, err)
				}
				sameResult(t, tag, snap, batch, k)
			}
			for p, x := range stream {
				if err := st.Push(x); err != nil {
					t.Fatal(err)
				}
				pushed := p + 1
				switch {
				case pushed == window:
					// Full fill, no slide yet: exact by construction.
					check("fill", pushed)
				case pushed == window+K:
					// The K-th slide just triggered the periodic rebuild
					// inside Push — the drift boundary the identity must
					// survive.
					if !st.Exact() {
						t.Fatalf("tick %d: periodic rebuild did not run", pushed)
					}
					check("periodic-rebuild", pushed)
				case pushed == window+K+3:
					// Mid-drift: force a rebuild, then the identity holds.
					if st.Exact() {
						t.Fatalf("tick %d: expected drifted state", pushed)
					}
					if err := st.Rebuild(); err != nil {
						t.Fatal(err)
					}
					check("forced-rebuild", pushed)
				}
			}
		})
	}
}

// TestStreamerPartialWindow: snapshots are available (and batch-identical)
// before the window fills, as soon as two samples are in.
func TestStreamerPartialWindow(t *testing.T) {
	const n, window = 8, 16
	stream := tickStream(t, n, 8, 7)
	opts := Options{Method: CompleteLinkage, Workers: 1}
	st, err := NewStreamer(window, StreamOptions{Cluster: opts})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if _, err := st.Snapshot(context.Background()); err == nil {
		t.Fatal("snapshot of empty window accepted")
	}
	if err := st.Push(stream[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Snapshot(context.Background()); err == nil {
		t.Fatal("snapshot of 1-sample window accepted")
	}
	for p := 1; p < len(stream); p++ {
		if err := st.Push(stream[p]); err != nil {
			t.Fatal(err)
		}
		snap, err := st.Snapshot(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		batch, err := Cluster(windowSeries(stream, p+1, window, n), opts)
		if err != nil {
			t.Fatal(err)
		}
		sameResult(t, "partial", snap, batch, 2)
	}
}

// TestStreamerConcurrentPushSnapshot exercises the concurrency contract
// under the race detector: one pusher, several snapshotters, plus forced
// rebuilds, all in flight at once.
func TestStreamerConcurrentPushSnapshot(t *testing.T) {
	const n, window, ticks = 16, 32, 200
	rng := rand.New(rand.NewSource(77))
	st, err := NewStreamer(window, StreamOptions{
		Cluster:      Options{Method: CompleteLinkage},
		RebuildEvery: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	done := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				res, err := st.Snapshot(context.Background())
				if err != nil {
					// The only acceptable error is an under-filled window
					// at the very start.
					if !strings.Contains(err.Error(), "need at least 2") {
						t.Errorf("snapshot: %v", err)
						return
					}
					continue
				}
				if _, err := res.Cut(2); err != nil {
					t.Errorf("cut: %v", err)
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(done)
		x := make([]float64, n)
		for k := 0; k < ticks; k++ {
			for i := range x {
				x[i] = rng.NormFloat64()
			}
			if err := st.Push(x); err != nil {
				t.Errorf("push: %v", err)
				return
			}
			if k%50 == 49 {
				if err := st.Rebuild(); err != nil {
					t.Errorf("rebuild: %v", err)
					return
				}
			}
		}
	}()
	wg.Wait()
}

// TestStreamerValidation pins the public error surface.
func TestStreamerValidation(t *testing.T) {
	if _, err := NewStreamer(1, StreamOptions{}); err == nil {
		t.Fatal("window=1 accepted")
	}
	if _, err := NewStreamer(8, StreamOptions{Cluster: Options{Prefix: -1}}); err == nil {
		t.Fatal("negative Prefix accepted")
	}
	st, err := NewStreamer(8, StreamOptions{Cluster: Options{Method: TMFGDBHT, Workers: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if st.Window() != 8 || st.Len() != 0 || !st.Exact() {
		t.Fatal("fresh streamer state")
	}
	// A rejected FIRST push must not fix the series count.
	if err := st.Push([]float64{1, math.Inf(1), 3, 4}); err == nil {
		t.Fatal("non-finite first sample accepted")
	}
	if err := st.Push([]float64{1, 2, 3}); err != nil {
		t.Fatalf("series count was fixed by a rejected push: %v", err)
	}
	if err := st.Push([]float64{1, 2}); err == nil {
		t.Fatal("arity change accepted")
	}
	if err := st.Push([]float64{1, math.NaN(), 3}); err == nil {
		t.Fatal("non-finite sample accepted")
	}
	if err := st.Push([]float64{4, 5, 6}); err != nil {
		t.Fatal(err)
	}
	// TMFG needs ≥ 4 series: the method minimum surfaces at Snapshot.
	if _, err := st.Snapshot(context.Background()); err == nil || !strings.Contains(err.Error(), "tmfg-dbht") {
		t.Fatalf("method minimum not enforced: %v", err)
	}
	st.Close()
	st.Close() // idempotent
	if err := st.Push([]float64{1, 2, 3}); err == nil {
		t.Fatal("push after Close accepted")
	}
	if _, err := st.Snapshot(context.Background()); err == nil {
		t.Fatal("snapshot after Close accepted")
	}
	if err := st.Rebuild(); err == nil {
		t.Fatal("rebuild after Close accepted")
	}
}
