module pfg

go 1.24
