package pfg

// Golden regression corpus: small deterministic fixtures whose Workers:1
// outputs (flat Cut(k) labels and the full Newick serialization, which
// embeds every merge and height) are pinned under testdata/golden/. The
// corpus is what makes refactors of the three-layer hot path (algorithms →
// flat memory → kernels) safe: any change that moves an output bit shows up
// as a golden diff instead of silently shifting results.
//
// Regenerate intentionally with:
//
//	go test -run TestGolden -update .
//
// The fixtures are synthesized in-process from committed tsgen seeds, so
// only the outputs live on disk. Heights and weights are float-formatted
// from exact bits; the files assume Go's strict (non-fused) amd64 float
// semantics, matching CI.

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"pfg/internal/tsgen"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden files under testdata/golden/ instead of comparing")

// goldenCase is one pinned pipeline configuration.
type goldenCase struct {
	Method Method
	N      int
	K      int // flat clusters to cut
}

// goldenFixture is the committed expectation for one case.
type goldenFixture struct {
	Method        string `json:"method"`
	N             int    `json:"n"`
	K             int    `json:"k"`
	Labels        []int  `json:"labels"`
	Newick        string `json:"newick"`
	EdgeWeightSum string `json:"edge_weight_sum"` // %x bit-exact float format
	Groups        int    `json:"groups"`
}

func goldenCases() []goldenCase {
	var cases []goldenCase
	for _, n := range []int{8, 16, 32} {
		for _, m := range []Method{TMFGDBHT, PMFGDBHT, CompleteLinkage, AverageLinkage} {
			k := 2
			if n >= 16 {
				k = 3
			}
			cases = append(cases, goldenCase{Method: m, N: n, K: k})
		}
	}
	return cases
}

// goldenSeries synthesizes the fixture input for size n: deterministic tsgen
// seeds, 48-sample series, 3 classes (2 for n=8).
func goldenSeries(n int) [][]float64 {
	classes := 3
	if n < 12 {
		classes = 2
	}
	return tsgen.GenerateClassed("golden", n, 48, classes, 0.45, int64(100+n)).Series
}

func goldenPath(c goldenCase) string {
	return filepath.Join("testdata", "golden", fmt.Sprintf("%s_n%d.json", c.Method, c.N))
}

func runGoldenCase(t *testing.T, c goldenCase) goldenFixture {
	t.Helper()
	// Workers:1 — the deterministic sequential pipeline the corpus pins.
	res, err := Cluster(goldenSeries(c.N), Options{Method: c.Method, Prefix: 2, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	labels, err := res.Cut(c.K)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := res.Newick(nil)
	if err != nil {
		t.Fatal(err)
	}
	return goldenFixture{
		Method:        c.Method.String(),
		N:             c.N,
		K:             c.K,
		Labels:        labels,
		Newick:        nw,
		EdgeWeightSum: fmt.Sprintf("%x", res.EdgeWeightSum),
		Groups:        res.Groups,
	}
}

func TestGolden(t *testing.T) {
	for _, c := range goldenCases() {
		t.Run(fmt.Sprintf("%s/n=%d", c.Method, c.N), func(t *testing.T) {
			got := runGoldenCase(t, c)
			path := goldenPath(c)
			if *updateGolden {
				blob, err := json.MarshalIndent(got, "", "  ")
				if err != nil {
					t.Fatal(err)
				}
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			blob, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run `go test -run TestGolden -update .`): %v", err)
			}
			var want goldenFixture
			if err := json.Unmarshal(blob, &want); err != nil {
				t.Fatalf("corrupt golden file %s: %v", path, err)
			}
			if len(got.Labels) != len(want.Labels) {
				t.Fatalf("labels: %d got vs %d golden", len(got.Labels), len(want.Labels))
			}
			for i := range got.Labels {
				if got.Labels[i] != want.Labels[i] {
					t.Fatalf("label[%d] = %d, golden %d", i, got.Labels[i], want.Labels[i])
				}
			}
			if got.Newick != want.Newick {
				t.Fatalf("newick drifted from golden:\ngot    %s\ngolden %s", got.Newick, want.Newick)
			}
			if got.EdgeWeightSum != want.EdgeWeightSum {
				t.Fatalf("edge weight sum %s, golden %s", got.EdgeWeightSum, want.EdgeWeightSum)
			}
			if got.Groups != want.Groups {
				t.Fatalf("groups %d, golden %d", got.Groups, want.Groups)
			}
		})
	}
}

// TestGoldenStreaming replays each golden fixture through the streaming
// engine (pushing the series tick by tick with a forced mid-stream drift
// rebuild) and requires the snapshot to reproduce the committed golden
// output — wiring the streaming layer into the same regression net as the
// batch pipeline.
func TestGoldenStreaming(t *testing.T) {
	if *updateGolden {
		t.Skip("golden files regenerate from the batch pipeline")
	}
	for _, c := range goldenCases() {
		t.Run(fmt.Sprintf("%s/n=%d", c.Method, c.N), func(t *testing.T) {
			series := goldenSeries(c.N)
			ticksTotal := len(series[0])
			window := ticksTotal * 3 / 4 // force sliding over the fixture
			st, err := NewStreamer(window, StreamOptions{
				Cluster:      Options{Method: c.Method, Prefix: 2, Workers: 1},
				RebuildEvery: -1, // drift freely; rely on the forced rebuild
			})
			if err != nil {
				t.Fatal(err)
			}
			defer st.Close()
			x := make([]float64, c.N)
			for k := 0; k < ticksTotal; k++ {
				for i := range x {
					x[i] = series[i][k]
				}
				if err := st.Push(x); err != nil {
					t.Fatal(err)
				}
			}
			if err := st.Rebuild(); err != nil {
				t.Fatal(err)
			}
			snap, err := st.Snapshot(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			// Batch reference over the same (slid) window, then both must
			// agree with each other bit-for-bit; the batch side is already
			// anchored by TestGolden.
			tail := make([][]float64, c.N)
			for i := range tail {
				tail[i] = series[i][ticksTotal-window:]
			}
			batch, err := Cluster(tail, Options{Method: c.Method, Prefix: 2, Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			sameResult(t, "golden-stream", snap, batch, c.K)
		})
	}
}
