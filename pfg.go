package pfg

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"slices"
	"strconv"
	"sync"

	"pfg/internal/ckpt"
	"pfg/internal/core"
	"pfg/internal/dendro"
	"pfg/internal/exec"
	"pfg/internal/hac"
	"pfg/internal/inc"
	"pfg/internal/kernel"
	"pfg/internal/matrix"
	"pfg/internal/metrics"
	"pfg/internal/obs"
	"pfg/internal/stream"
	"pfg/internal/tmfg"
	"pfg/internal/ws"
)

// Matrix is a dense symmetric matrix (similarities or dissimilarities).
type Matrix = matrix.Sym

// Dendrogram is a hierarchical clustering tree; leaves are the input
// objects and Cut(k) produces flat clusterings.
type Dendrogram = dendro.Dendrogram

// Method selects the clustering algorithm for Cluster.
type Method int

const (
	// TMFGDBHT is the paper's method: parallel TMFG + parallel DBHT.
	TMFGDBHT Method = iota
	// PMFGDBHT is the slower PMFG-based baseline.
	PMFGDBHT
	// CompleteLinkage is complete-linkage HAC on the dissimilarity matrix.
	CompleteLinkage
	// AverageLinkage is average-linkage HAC on the dissimilarity matrix.
	AverageLinkage
)

// MinSeries returns the smallest number of series the method can cluster:
// 2 for the HAC linkages, 4 for the filtered-graph methods (a TMFG/PMFG
// starts from a 4-clique). Serving layers use it to distinguish "not enough
// data yet" from genuine errors.
func (m Method) MinSeries() int {
	switch m {
	case CompleteLinkage, AverageLinkage:
		return 2
	default:
		return 4
	}
}

func (m Method) String() string {
	switch m {
	case TMFGDBHT:
		return "tmfg-dbht"
	case PMFGDBHT:
		return "pmfg-dbht"
	case CompleteLinkage:
		return "complete-linkage"
	case AverageLinkage:
		return "average-linkage"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// Options configures Cluster.
type Options struct {
	// Method selects the algorithm (default TMFGDBHT).
	Method Method
	// Prefix is the TMFG batch size (default 10, the paper's sweet spot;
	// 1 reproduces the sequential TMFG exactly).
	Prefix int
	// Workers bounds the number of goroutines the call may run concurrently
	// (0 = GOMAXPROCS, via a shared process-wide pool). A positive value
	// gives the call its own bounded worker pool, so concurrent Cluster
	// calls with explicit budgets cannot oversubscribe the machine; 1 runs
	// the whole pipeline sequentially and deterministically on the calling
	// goroutine.
	Workers int
}

// Result is a hierarchical clustering outcome.
type Result struct {
	// Dendrogram is the full merge tree.
	Dendrogram *Dendrogram
	// EdgeWeightSum is the similarity captured by the filtered graph
	// (0 for non-graph methods).
	EdgeWeightSum float64
	// Groups is the number of DBHT converging-bubble groups (0 for HAC).
	Groups int
	// Edges lists the filtered graph's undirected edges (3n−6 of them for
	// TMFG/PMFG) in insertion order; nil for the HAC methods. The slice is
	// owned by the Result.
	Edges [][2]int32
	// TicksSinceExact is the age, in window generations, of the exact
	// clustering this result was served from. It is 0 for batch results and
	// for snapshots clustered from their own window state, and positive only
	// for incremental streaming snapshots (see StreamOptions.Incremental),
	// which serve the most recent exact clustering while the window stays
	// within the drift bound.
	TicksSinceExact int
	// Drift is the measured entrywise deviation ‖corr_now − corr_ref‖∞
	// between the current window's correlation matrix and the one this
	// result was clustered from. It is 0 whenever TicksSinceExact is 0 and
	// at most the configured drift threshold otherwise.
	Drift float64
}

// Cut returns flat cluster labels in [0, k).
func (r *Result) Cut(k int) ([]int, error) { return r.Dendrogram.Cut(k) }

// Newick serializes the dendrogram in Newick format, with optional leaf
// names (nil for L0, L1, ...).
func (r *Result) Newick(names []string) (string, error) { return r.Dendrogram.Newick(names) }

// CopheneticCorrelation measures how faithfully the dendrogram's merge
// heights reproduce the given dissimilarities (1 = perfect). Note that DBHT
// heights are ordinal by design, so this is most meaningful for the HAC
// methods.
func (r *Result) CopheneticCorrelation(dis *Matrix) (float64, error) {
	return r.Dendrogram.CopheneticCorrelation(dis.Data)
}

// ResultJSON is the stable JSON wire form of a Result, shared by the
// pfg-serve HTTP API and pfg-cluster's -json output. Field names and
// encodings are a compatibility surface: edges are canonicalized (u < v,
// lexicographically sorted) so the same clustering always serializes to the
// same bytes regardless of construction order, and cut labels are keyed by
// the decimal cluster count (JSON object keys are strings). A marshaled
// ResultJSON round-trips through encoding/json unchanged.
type ResultJSON struct {
	// N is the number of clustered objects (dendrogram leaves).
	N int `json:"n"`
	// EdgeWeightSum is the similarity captured by the filtered graph
	// (0 for the HAC methods).
	EdgeWeightSum float64 `json:"edge_weight_sum"`
	// Groups is the number of DBHT converging-bubble groups (0 for HAC).
	Groups int `json:"groups"`
	// Edges lists the filtered graph's 3n−6 undirected edges in canonical
	// order; omitted for the HAC methods.
	Edges [][2]int32 `json:"edges,omitempty"`
	// Newick is the full dendrogram in Newick format.
	Newick string `json:"newick"`
	// Cuts maps a requested cluster count (decimal string) to flat labels
	// in [0, k); omitted when no cuts were requested.
	Cuts map[string][]int `json:"cuts,omitempty"`
	// StaleTicks is Result.TicksSinceExact; omitted (0) for exact results,
	// so pre-incremental serializations are byte-identical.
	StaleTicks int `json:"stale_ticks,omitempty"`
	// Drift is Result.Drift; omitted (0) for exact results.
	Drift float64 `json:"drift,omitempty"`
}

// JSON builds the stable wire view of the result: the Newick tree (with
// optional leaf names, nil for L0, L1, ...), the canonicalized
// filtered-graph edge list, and flat labels at each requested cut. An
// invalid cut (k < 1 or k > n) fails the whole view rather than silently
// dropping the entry.
func (r *Result) JSON(cuts []int, names []string) (*ResultJSON, error) {
	nwk, err := r.Newick(names)
	if err != nil {
		return nil, err
	}
	v := &ResultJSON{
		N:             r.Dendrogram.N,
		EdgeWeightSum: r.EdgeWeightSum,
		Groups:        r.Groups,
		Newick:        nwk,
		StaleTicks:    r.TicksSinceExact,
		Drift:         r.Drift,
	}
	if r.Edges != nil {
		es := make([][2]int32, len(r.Edges))
		for i, e := range r.Edges {
			if e[0] > e[1] {
				e[0], e[1] = e[1], e[0]
			}
			es[i] = e
		}
		slices.SortFunc(es, func(a, b [2]int32) int {
			if a[0] != b[0] {
				return int(a[0] - b[0])
			}
			return int(a[1] - b[1])
		})
		v.Edges = es
	}
	if len(cuts) > 0 {
		v.Cuts = make(map[string][]int, len(cuts))
		for _, k := range cuts {
			labels, err := r.Cut(k)
			if err != nil {
				return nil, err
			}
			v.Cuts[strconv.Itoa(k)] = labels
		}
	}
	return v, nil
}

// ResultDeltaVersion is the format version stamped into every
// ResultDeltaJSON (the "v" field). Consumers must reject versions they do
// not understand instead of guessing.
const ResultDeltaVersion = 1

// ResultDeltaJSON is the versioned delta wire form between two ResultJSON
// views of the same session — typically consecutive served generations of a
// streaming window, where label moves and filtered-graph edge churn per tick
// are small. It is designed for exact reconstruction: applying a delta to
// the base view it was computed from (ApplyDelta) yields a view that
// marshals byte-identically to the full next view, so push-based serving
// layers can fan out tiny deltas instead of full snapshot bodies without
// weakening any bit-level guarantee.
//
// Scalars (edge weight, group count, staleness) are carried as absolute
// values — they are a few bytes either way. Structural fields are sparse:
// edge changes against the canonical sorted edge list, label reassignments
// as index→label pairs per cut, and the Newick tree only when it changed at
// all (heights included — DBHT heights are ordinal, so a topologically
// stable tick usually changes nothing).
type ResultDeltaJSON struct {
	// V is the delta format version (ResultDeltaVersion).
	V int `json:"v"`
	// N is the number of clustered objects; it must match the base view's.
	N int `json:"n"`
	// EdgeWeightSum and Groups are the next view's absolute values.
	EdgeWeightSum float64 `json:"edge_weight_sum"`
	Groups        int     `json:"groups"`
	// EdgesAdded and EdgesRemoved transform the base view's canonical
	// (u < v, lexicographically sorted) edge list into the next view's; both
	// lists are themselves in canonical order.
	EdgesAdded   [][2]int32 `json:"edges_added,omitempty"`
	EdgesRemoved [][2]int32 `json:"edges_removed,omitempty"`
	// Newick is the next view's full tree, present only when it differs from
	// the base view's (an empty string means "unchanged" — a real Newick
	// serialization is never empty).
	Newick string `json:"newick,omitempty"`
	// CutMoves maps a cut's decimal cluster count to the sparse label
	// reassignments [index, newLabel] at that cut, in ascending index order.
	// Cuts whose labels did not change are absent; the base and next views
	// must carry identical cut-key sets.
	CutMoves map[string][][2]int `json:"cut_moves,omitempty"`
	// StaleTicks and Drift are the next view's absolute staleness metadata.
	StaleTicks int     `json:"stale_ticks,omitempty"`
	Drift      float64 `json:"drift,omitempty"`
}

// Delta computes the sparse delta that transforms the receiver (the base
// view) into next. The two views must be comparable: same object count,
// same method family (both with or both without a filtered-graph edge
// list), and identical cut-key sets — a serving layer that cannot satisfy
// that (e.g. the base generation was evicted) falls back to sending the
// full view. The receiver and next are not mutated and may be shared.
func (r *ResultJSON) Delta(next *ResultJSON) (*ResultDeltaJSON, error) {
	if next.N != r.N {
		return nil, fmt.Errorf("pfg: delta base has n=%d, next has n=%d", r.N, next.N)
	}
	if (r.Edges == nil) != (next.Edges == nil) {
		return nil, fmt.Errorf("pfg: delta base and next disagree on having a filtered-graph edge list")
	}
	if len(r.Cuts) != len(next.Cuts) {
		return nil, fmt.Errorf("pfg: delta base has %d cuts, next has %d", len(r.Cuts), len(next.Cuts))
	}
	d := &ResultDeltaJSON{
		V:             ResultDeltaVersion,
		N:             next.N,
		EdgeWeightSum: next.EdgeWeightSum,
		Groups:        next.Groups,
		StaleTicks:    next.StaleTicks,
		Drift:         next.Drift,
	}
	if next.Newick != r.Newick {
		d.Newick = next.Newick
	}
	// Both edge lists are canonically sorted (a ResultJSON invariant), so
	// one merge walk yields both change lists in canonical order.
	i, j := 0, 0
	for i < len(r.Edges) && j < len(next.Edges) {
		switch cmpEdge(r.Edges[i], next.Edges[j]) {
		case 0:
			i++
			j++
		case -1:
			d.EdgesRemoved = append(d.EdgesRemoved, r.Edges[i])
			i++
		default:
			d.EdgesAdded = append(d.EdgesAdded, next.Edges[j])
			j++
		}
	}
	d.EdgesRemoved = append(d.EdgesRemoved, r.Edges[i:]...)
	d.EdgesAdded = append(d.EdgesAdded, next.Edges[j:]...)
	for k, nextLabels := range next.Cuts {
		baseLabels, ok := r.Cuts[k]
		if !ok {
			return nil, fmt.Errorf("pfg: delta next has cut %q, base does not", k)
		}
		if len(baseLabels) != len(nextLabels) {
			return nil, fmt.Errorf("pfg: cut %q has %d labels in base, %d in next", k, len(baseLabels), len(nextLabels))
		}
		var moves [][2]int
		for idx, l := range nextLabels {
			if baseLabels[idx] != l {
				moves = append(moves, [2]int{idx, l})
			}
		}
		if moves != nil {
			if d.CutMoves == nil {
				d.CutMoves = make(map[string][][2]int)
			}
			d.CutMoves[k] = moves
		}
	}
	return d, nil
}

// ApplyDelta reconstructs the next view from the receiver (the base view the
// delta was computed from) and the delta: the returned view marshals
// byte-identically to the full next view. The receiver is not mutated;
// unchanged slices are shared with it, so treat both views as immutable. A
// delta that does not belong to this base (version or shape mismatch, an
// edge removal or cut move that does not apply cleanly) is an error — the
// caller should refetch a full snapshot rather than guess.
func (r *ResultJSON) ApplyDelta(d *ResultDeltaJSON) (*ResultJSON, error) {
	if d.V != ResultDeltaVersion {
		return nil, fmt.Errorf("pfg: unknown delta version %d (want %d)", d.V, ResultDeltaVersion)
	}
	if d.N != r.N {
		return nil, fmt.Errorf("pfg: delta is for n=%d, base has n=%d", d.N, r.N)
	}
	out := &ResultJSON{
		N:             r.N,
		EdgeWeightSum: d.EdgeWeightSum,
		Groups:        d.Groups,
		Newick:        r.Newick,
		StaleTicks:    d.StaleTicks,
		Drift:         d.Drift,
	}
	if d.Newick != "" {
		out.Newick = d.Newick
	}
	out.Edges = r.Edges
	if len(d.EdgesAdded) > 0 || len(d.EdgesRemoved) > 0 {
		if r.Edges == nil {
			return nil, fmt.Errorf("pfg: delta carries edge changes, base has no edge list")
		}
		kept := make([][2]int32, 0, len(r.Edges)-len(d.EdgesRemoved)+len(d.EdgesAdded))
		ri := 0
		for _, e := range r.Edges {
			if ri < len(d.EdgesRemoved) && d.EdgesRemoved[ri] == e {
				ri++
				continue
			}
			kept = append(kept, e)
		}
		if ri != len(d.EdgesRemoved) {
			return nil, fmt.Errorf("pfg: delta removes edge %v not present in the base", d.EdgesRemoved[ri])
		}
		// Merge the added edges back in canonical order; a duplicate means
		// the delta does not belong to this base.
		merged := make([][2]int32, 0, len(kept)+len(d.EdgesAdded))
		ai := 0
		for _, e := range kept {
			for ai < len(d.EdgesAdded) && cmpEdge(d.EdgesAdded[ai], e) < 0 {
				merged = append(merged, d.EdgesAdded[ai])
				ai++
			}
			if ai < len(d.EdgesAdded) && d.EdgesAdded[ai] == e {
				return nil, fmt.Errorf("pfg: delta adds edge %v already present in the base", e)
			}
			merged = append(merged, e)
		}
		merged = append(merged, d.EdgesAdded[ai:]...)
		out.Edges = merged
	}
	out.Cuts = r.Cuts
	if len(d.CutMoves) > 0 {
		out.Cuts = make(map[string][]int, len(r.Cuts))
		for k, labels := range r.Cuts {
			out.Cuts[k] = labels
		}
		for k, moves := range d.CutMoves {
			base, ok := r.Cuts[k]
			if !ok {
				return nil, fmt.Errorf("pfg: delta moves labels of cut %q, base does not have it", k)
			}
			labels := slices.Clone(base)
			for _, mv := range moves {
				if mv[0] < 0 || mv[0] >= len(labels) {
					return nil, fmt.Errorf("pfg: delta cut %q moves index %d out of range [0,%d)", k, mv[0], len(labels))
				}
				labels[mv[0]] = mv[1]
			}
			out.Cuts[k] = labels
		}
	}
	return out, nil
}

// cmpEdge orders canonical edges lexicographically.
func cmpEdge(a, b [2]int32) int {
	if a[0] != b[0] {
		if a[0] < b[0] {
			return -1
		}
		return 1
	}
	switch {
	case a[1] < b[1]:
		return -1
	case a[1] > b[1]:
		return 1
	}
	return 0
}

// Pearson computes the Pearson correlation matrix of a time-series
// collection (one row per series, equal lengths).
func Pearson(series [][]float64) (*Matrix, error) { return matrix.Pearson(series) }

// Dissimilarity converts correlations into the metric dissimilarity
// d = sqrt(2(1−p)).
func Dissimilarity(corr *Matrix) *Matrix { return matrix.Dissimilarity(corr) }

// Cluster computes a hierarchical clustering of raw time series: Pearson
// correlation → filtered graph (or HAC) → dendrogram. It is
// ClusterContext with a background (never-cancelled) context.
func Cluster(series [][]float64, opts Options) (*Result, error) {
	return ClusterContext(context.Background(), series, opts)
}

// ClusterContext is Cluster with cooperative cancellation: the pipeline
// checks ctx at chunk and stage boundaries and returns ctx.Err() promptly
// once ctx is cancelled or its deadline passes. The concurrency of the call
// is bounded by opts.Workers (see Options).
//
// Each call owns one ws.Workspace from the process-wide pool: every
// intermediate of the pipeline (correlation and dissimilarity matrices, the
// filtered graph, APSP, and all scratch) is drawn from it and returned
// before the call ends, so repeated calls on same-shaped inputs run at
// steady state with near-zero allocation churn.
func ClusterContext(ctx context.Context, series [][]float64, opts Options) (*Result, error) {
	// Reject invalid options and undersized inputs before the O(n²·T)
	// correlation stage runs.
	if err := validateOptions(len(series), opts); err != nil {
		return nil, err
	}
	pool, release := poolFor(opts)
	defer release()
	w := ws.Get()
	defer ws.Put(w)
	sim, dis, err := core.CorrelateWS(ctx, pool, w, series)
	if err != nil {
		return nil, err
	}
	r, err := clusterMatrixOn(ctx, pool, w, sim, dis, opts)
	// The matrices are internal to this call; nothing in Result references
	// them.
	sim.Release(w)
	dis.Release(w)
	return r, err
}

// ClusterMatrix clusters from a precomputed similarity matrix and optional
// dissimilarity matrix (pass nil to derive it as sqrt(2(1−s))).
func ClusterMatrix(sim, dis *Matrix, opts Options) (*Result, error) {
	return ClusterMatrixContext(context.Background(), sim, dis, opts)
}

// ClusterMatrixContext is ClusterMatrix with cooperative cancellation and a
// per-call worker budget, like ClusterContext. The caller keeps ownership
// of sim and dis; only the call's internal scratch is pooled.
//
// Because the matrices come from the caller rather than from Pearson (whose
// outputs are finite by construction), they are validated up front: shape
// mismatches and non-finite entries return an error instead of poisoning
// gain comparisons (or panicking) deep inside a pipeline stage.
func ClusterMatrixContext(ctx context.Context, sim, dis *Matrix, opts Options) (*Result, error) {
	if err := validateMatrix("similarity", sim); err != nil {
		return nil, err
	}
	if dis != nil {
		if err := validateMatrix("dissimilarity", dis); err != nil {
			return nil, err
		}
		if dis.N != sim.N {
			return nil, fmt.Errorf("pfg: dissimilarity matrix is %d×%d, similarity is %d×%d", dis.N, dis.N, sim.N, sim.N)
		}
	}
	pool, release := poolFor(opts)
	defer release()
	w := ws.Get()
	defer ws.Put(w)
	return clusterMatrixOn(ctx, pool, w, sim, dis, opts)
}

// validateMatrix rejects malformed caller-provided matrices: wrong backing
// length (which would panic on indexing) and non-finite entries (which
// silently corrupt ordering-based stages).
func validateMatrix(name string, m *Matrix) error {
	if m == nil {
		return fmt.Errorf("pfg: nil %s matrix", name)
	}
	if m.N < 0 || len(m.Data) != m.N*m.N {
		return fmt.Errorf("pfg: %s matrix has %d entries, want n²=%d", name, len(m.Data), m.N*m.N)
	}
	for i, v := range m.Data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("pfg: %s matrix entry (%d,%d) is non-finite", name, i/m.N, i%m.N)
		}
	}
	return nil
}

// poolFor maps Options.Workers to an execution pool: the shared
// GOMAXPROCS-sized pool for 0, or a fresh bounded pool (released when the
// call finishes) for an explicit budget.
func poolFor(opts Options) (*exec.Pool, func()) {
	if opts.Workers <= 0 {
		return exec.Default(), func() {}
	}
	p := exec.New(opts.Workers)
	return p, p.Close
}

// validateOptions rejects invalid options and inputs too small for the
// selected method with a clear error, instead of a panic deep inside a
// pipeline stage (or wasted work before a later rejection).
func validateOptions(n int, opts Options) error {
	if opts.Prefix < 0 {
		return fmt.Errorf("pfg: Prefix must be ≥ 0 (0 selects the default), got %d", opts.Prefix)
	}
	if min := opts.Method.MinSeries(); n < min {
		return fmt.Errorf("pfg: %v needs at least %d series, have %d", opts.Method, min, n)
	}
	return nil
}

func clusterMatrixOn(ctx context.Context, pool *exec.Pool, w *ws.Workspace, sim, dis *Matrix, opts Options) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := validateOptions(sim.N, opts); err != nil {
		return nil, err
	}
	if opts.Prefix == 0 {
		opts.Prefix = 10
	}
	switch opts.Method {
	case TMFGDBHT:
		r, err := core.TMFGDBHTWS(ctx, pool, w, sim, dis, opts.Prefix)
		if err != nil {
			return nil, err
		}
		return &Result{Dendrogram: r.Dendrogram, EdgeWeightSum: r.EdgeWeightSum, Groups: r.Groups, Edges: r.Edges}, nil
	case PMFGDBHT:
		r, err := core.PMFGDBHTCtx(ctx, pool, sim, dis)
		if err != nil {
			return nil, err
		}
		return &Result{Dendrogram: r.Dendrogram, EdgeWeightSum: r.EdgeWeightSum, Groups: r.Groups, Edges: r.Edges}, nil
	case CompleteLinkage, AverageLinkage:
		ownDis := false
		if dis == nil {
			var err error
			dis, err = matrix.DissimilarityWS(ctx, pool, w, sim)
			if err != nil {
				return nil, err
			}
			ownDis = true
		}
		linkage := hac.Complete
		if opts.Method == AverageLinkage {
			linkage = hac.Average
		}
		r, err := core.HACWS(ctx, pool, w, dis, linkage)
		if ownDis {
			dis.Release(w)
		}
		if err != nil {
			return nil, err
		}
		return &Result{Dendrogram: r.Dendrogram}, nil
	default:
		return nil, fmt.Errorf("pfg: unknown method %v", opts.Method)
	}
}

// TMFG builds just the filtered graph from a similarity matrix with the
// given prefix, returning the undirected edge list (3n−6 edges) and the
// captured edge weight.
func TMFG(sim *Matrix, prefix int) (edges [][2]int32, weight float64, err error) {
	r, err := tmfg.Build(sim, prefix)
	if err != nil {
		return nil, 0, err
	}
	return r.Edges, r.EdgeWeightSum(sim), nil
}

// DefaultRebuildEvery is the default drift-rebuild period of a Streamer: the
// number of window slides between exact moment recomputations.
const DefaultRebuildEvery = stream.DefaultRebuildEvery

// Precision selects a Streamer's moment-storage mode — see
// StreamOptions.Precision.
type Precision = stream.Precision

const (
	// Float64 stores the window ring and moment band in float64: full memory
	// bandwidth, full bit-determinism against the batch pipeline. The default.
	Float64 = stream.Float64
	// Float32 stores ring and band in float32, halving the per-tick memory
	// traffic of the O(n²) roll and the ring bytes a serving layer charges
	// per session. Correlations deviate from the float64 pipeline by at most
	// Float32CorrBound on well-conditioned data, and snapshots lose their
	// cross-mode bit-identity guarantee (they remain deterministic and
	// worker-count independent within the mode).
	Float32 = stream.Float32
)

// Float32CorrBound is the documented correlation error bound of the Float32
// storage mode — see stream.Float32CorrBound for its conditioning caveats.
const Float32CorrBound = stream.Float32CorrBound

// KernelISA reports which compute-kernel backend this process selected at
// init: "avx2" on amd64 hosts with AVX2 (unless built with -tags purego or
// started with PFG_NOSIMD set), "scalar" otherwise. Both backends produce
// bit-identical float64 results; the name is operational metadata for logs
// and /statsz, not a correctness signal.
func KernelISA() string { return kernel.ISA() }

// ErrClosed is the sentinel returned by Push, Snapshot, SnapshotGen, and
// Rebuild once the Streamer has been closed. Test for it with errors.Is; a
// closed streamer never panics or blocks.
var ErrClosed = errors.New("pfg: streamer is closed")

// StreamOptions configures NewStreamer.
type StreamOptions struct {
	// Cluster configures the snapshots (method, prefix, worker budget), with
	// the same semantics as the batch Options. With Workers > 0 the streamer
	// owns one bounded pool for its whole lifetime (released by Close);
	// Workers:1 makes every Snapshot deterministic and bit-comparable to a
	// Workers:1 batch Cluster.
	Cluster Options
	// RebuildEvery is the drift-rebuild knob K: every K window slides the
	// moments are recomputed exactly from the buffered window (O(n²·T),
	// amortized n²·T/K per tick), bounding float drift and restoring
	// bit-identity with batch recomputation. 0 selects DefaultRebuildEvery;
	// a negative value disables periodic rebuilds (Rebuild can still be
	// called explicitly).
	RebuildEvery int
	// Precision selects the moment-storage mode: the zero value (Float64)
	// keeps the full bit-determinism contract; Float32 halves the window's
	// memory footprint and per-tick bandwidth at a bounded correlation error
	// (Float32CorrBound). Fixed for the streamer's lifetime.
	Precision Precision
	// Incremental enables the cross-tick incremental clustering layer (see
	// IncrementalOptions). The zero value leaves it off: every snapshot
	// clusters the window from scratch.
	Incremental IncrementalOptions
}

// IncrementalOptions configures the incremental clustering layer of a
// Streamer: instead of re-clustering the rolling window on every snapshot,
// the streamer keeps the most recent exact clustering and serves it while
// the window's correlation matrix provably stays close to the state that
// clustering was computed from.
//
// Serving contract. A snapshot is re-clustered exactly (and becomes the new
// reference) whenever (1) the engine's moments are exact — during window
// fill and on the first snapshot after a periodic or forced Rebuild, which
// preserves the streamer's bit-identity guarantees at every exact boundary;
// (2) the measured entrywise correlation drift since the reference exceeds
// DriftThreshold; (3) the reference is MaxStale generations old; or (4)
// strict revalidation (RepairBudget) fails to certify the reference's
// recorded decisions. Otherwise the snapshot serves an owned copy of the
// reference, with Result.TicksSinceExact and Result.Drift reporting its
// age and the measured drift.
type IncrementalOptions struct {
	// Enabled turns the incremental layer on. Supported for the TMFGDBHT,
	// CompleteLinkage, and AverageLinkage methods.
	Enabled bool
	// DriftThreshold is the serving bound ε: the largest entrywise
	// correlation deviation from the reference clustering's window that may
	// be served incrementally. 0 selects the default (0.02); a negative
	// value forces an exact re-cluster on every snapshot.
	DriftThreshold float64
	// MaxStale bounds the reference's age in window generations. 0 selects
	// the default (64); negative disables the staleness gate.
	MaxStale int
	// RepairBudget > 0 enables strict decision revalidation every
	// ValidateEvery snapshots: the reference clustering's recorded
	// decisions (TMFG insertion trajectory, HAC merge slacks) are
	// re-certified against the current matrix, warm-repairing TMFG
	// trajectories when at most RepairBudget rounds went dirty, and falling
	// back to an exact re-cluster when certification fails.
	RepairBudget int
	// ValidateEvery is the strict-mode cadence in snapshots (0 selects the
	// default of 4). Ignored unless RepairBudget > 0.
	ValidateEvery int
}

// IncrementalStats counts incremental-layer gate outcomes for a Streamer
// (see Streamer.IncrementalStats). Fulls is the total number of exact
// re-clusterings; the FullX fields break it down by the gate that forced
// it. Hits counts snapshots served from the reference.
type IncrementalStats struct {
	Hits         uint64
	Fulls        uint64
	FullInit     uint64
	FullBoundary uint64
	FullDrift    uint64
	FullStale    uint64
	FullRepair   uint64
	Repairs      uint64
}

// StreamerMetrics is a streamer's per-stage timing instrumentation,
// installed with Streamer.SetMetrics. Each field is one pipeline stage (an
// obs.Stage: a log2-bucketed duration histogram plus the most recent
// duration, both optional); nil fields are skipped at zero cost, and with no
// metrics installed the streamer never reads the clock on its hot paths. The
// serving layer points the stages at shared server-level histograms; CLIs
// that only want slow-tick breakdowns use NewStreamerMetrics (bare stages,
// no histograms) and read Last per stage.
type StreamerMetrics struct {
	// Push stages (internal/stream): sample validation, the O(n²) rank-1
	// roll + moment bookkeeping, and exact rebuilds (periodic, forced, or
	// corruption repairs).
	PushAdmit *obs.Stage
	PushRoll  *obs.Stage
	Rebuild   *obs.Stage

	// Snapshot stages of the non-incremental path: finishing moments into
	// correlation/dissimilarity matrices, then the clustering run.
	SnapshotFinish  *obs.Stage
	SnapshotCluster *obs.Stage

	// Incremental gate-chain stages (internal/inc): the drift measurement,
	// strict revalidation, and exact refreshes (which subsume finish +
	// cluster for incremental sessions).
	IncDrift      *obs.Stage
	IncRevalidate *obs.Stage
	IncRefresh    *obs.Stage
}

// NewStreamerMetrics returns a StreamerMetrics with every stage allocated
// but no histograms attached: each stage records only its most recent
// duration (Stage.Last) — what a CLI -log-slow-tick breakdown needs without
// carrying a registry.
func NewStreamerMetrics() *StreamerMetrics {
	return &StreamerMetrics{
		PushAdmit:       obs.NewStage(nil),
		PushRoll:        obs.NewStage(nil),
		Rebuild:         obs.NewStage(nil),
		SnapshotFinish:  obs.NewStage(nil),
		SnapshotCluster: obs.NewStage(nil),
		IncDrift:        obs.NewStage(nil),
		IncRevalidate:   obs.NewStage(nil),
		IncRefresh:      obs.NewStage(nil),
	}
}

// Streamer is the stateful serving layer over the batch pipeline: it
// maintains rolling-window Pearson moments incrementally (O(n²) per Push
// instead of the O(n²·T) batch correlation recompute) and clusters the
// current window on demand. The number of series is fixed by the first Push;
// Snapshot becomes available once two samples are in.
//
// Exactness. While the window is filling, and immediately after any rebuild
// (periodic every RebuildEvery slides, or forced via Rebuild), snapshots are
// bit-identical to Cluster over the same window with the same Options —
// every moment is maintained by the same ascending-time fold the batch SYRK
// computes. Between rebuilds, roll downdates accumulate bounded float drift
// (≤ RebuildEvery rank-1 roundings; ~1e-12 relative for unit-scale data).
//
// Concurrency. Push and Rebuild are writers and may be called from one
// goroutine at a time; Snapshot is a reader and may be called concurrently
// with other Snapshots and with Push — it holds the streamer's read lock
// only while copying the O(n²) moment band, then finishes and clusters on
// private buffers. All scratch comes from one pinned workspace owned by the
// streamer (not the process-wide pool), so steady-state ticks allocate
// almost nothing beyond the Result that escapes.
type Streamer struct {
	mu      sync.RWMutex
	window  int
	opts    StreamOptions
	pool    *exec.Pool
	ownPool bool
	w       *ws.Workspace
	eng     *stream.Engine   // created by the first Push
	inc     *inc.Manager     // non-nil iff Incremental.Enabled
	met     *StreamerMetrics // per-stage timing, nil = uninstrumented
	closed  bool

	// watchMu guards watchCh, the close-and-replace notification channel
	// behind Watch. It is separate from mu because the engine's generation
	// hook fires while mu is write-held, and Watch readers must be able to
	// fetch the channel without contending on the streamer lock.
	watchMu sync.Mutex
	watchCh chan struct{}
}

// NewStreamer creates a streamer over a rolling window of the given length
// (in samples). The number of series is inferred from the first Push.
func NewStreamer(window int, opts StreamOptions) (*Streamer, error) {
	return newStreamer(window, opts, ws.New())
}

// newStreamer is NewStreamer over a caller-provided pinned workspace, so
// RestoreStreamer can hand over a workspace the restored engine's buffers
// were already drawn from.
func newStreamer(window int, opts StreamOptions, w *ws.Workspace) (*Streamer, error) {
	if window < 2 {
		return nil, fmt.Errorf("pfg: streaming window %d < 2", window)
	}
	if opts.Cluster.Prefix < 0 {
		return nil, fmt.Errorf("pfg: Prefix must be ≥ 0 (0 selects the default), got %d", opts.Cluster.Prefix)
	}
	if opts.RebuildEvery == 0 {
		opts.RebuildEvery = DefaultRebuildEvery
	}
	st := &Streamer{window: window, opts: opts, w: w, watchCh: make(chan struct{})}
	if opts.Incremental.Enabled {
		cfg := inc.Config{
			DriftThreshold: opts.Incremental.DriftThreshold,
			MaxStale:       opts.Incremental.MaxStale,
			RepairBudget:   opts.Incremental.RepairBudget,
			ValidateEvery:  opts.Incremental.ValidateEvery,
		}
		switch opts.Cluster.Method {
		case TMFGDBHT:
			cfg.Kind = inc.TMFGDBHT
			cfg.Prefix = opts.Cluster.Prefix
			if cfg.Prefix == 0 {
				cfg.Prefix = 10
			}
		case CompleteLinkage:
			cfg.Kind = inc.HACLinkage
			cfg.Linkage = hac.Complete
		case AverageLinkage:
			cfg.Kind = inc.HACLinkage
			cfg.Linkage = hac.Average
		default:
			return nil, fmt.Errorf("pfg: incremental streaming does not support method %v", opts.Cluster.Method)
		}
		st.inc = inc.NewManager(cfg)
	}
	if opts.Cluster.Workers > 0 {
		st.pool = exec.New(opts.Cluster.Workers)
		st.ownPool = true
	} else {
		st.pool = exec.Default()
	}
	return st, nil
}

// Push admits one sample — one observation per series, in series order —
// into the rolling window in O(n²). The first Push fixes the number of
// series. Samples must be finite and within the window's overflow-safe
// magnitude bound — √(MaxFloat/window) of the storage mode, ~2.1e152 at
// window 4096 in Float64 and ~2.8e17 in Float32; a rejected Push leaves the
// window untouched.
func (st *Streamer) Push(sample []float64) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return ErrClosed
	}
	if st.eng == nil {
		// The series count is fixed by the first ADMITTED sample: if this
		// push is rejected (non-finite values), discard the tentative
		// engine so a later well-formed sample of any arity can still be
		// first.
		eng, err := stream.New(len(sample), st.window, st.opts.RebuildEvery, st.opts.Precision, st.w)
		if err != nil {
			return err
		}
		eng.SetGenHook(st.notifyWatch)
		if st.met != nil {
			eng.SetMetrics(streamMetrics(st.met))
		}
		if err := eng.Push(context.Background(), st.pool, sample); err != nil {
			eng.Release()
			return err
		}
		st.eng = eng
		return nil
	}
	return st.eng.Push(context.Background(), st.pool, sample)
}

// streamMetrics projects the push-side stages into the engine's metrics
// struct.
func streamMetrics(m *StreamerMetrics) *stream.Metrics {
	return &stream.Metrics{Admit: m.PushAdmit, Roll: m.PushRoll, Rebuild: m.Rebuild}
}

// SetMetrics installs (or, with nil, removes) per-stage timing
// instrumentation. It takes the write lock, so it serializes with pushes and
// snapshots and can be called at any point in the streamer's life — the
// serving layer installs metrics right after creating or restoring a
// session. The streamer keeps the pointer; the caller may read stage values
// concurrently (stages are atomic).
func (st *Streamer) SetMetrics(m *StreamerMetrics) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.met = m
	if st.eng != nil {
		if m == nil {
			st.eng.SetMetrics(nil)
		} else {
			st.eng.SetMetrics(streamMetrics(m))
		}
	}
	if st.inc != nil {
		if m == nil {
			st.inc.SetMetrics(nil)
		} else {
			st.inc.SetMetrics(&inc.Metrics{Drift: m.IncDrift, Revalidate: m.IncRevalidate, Refresh: m.IncRefresh})
		}
	}
}

// Metrics returns the installed stage-timing set (nil when uninstrumented).
func (st *Streamer) Metrics() *StreamerMetrics {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.met
}

// Snapshot clusters the current window with the streamer's Options,
// returning the same Result a batch Cluster call would. It requires at least
// 2 samples (and the method's minimum series count). Snapshot may run
// concurrently with Push: it copies the moment state under a read lock and
// does all remaining work — the O(n²) correlation finish and the clustering
// — on private workspace buffers.
func (st *Streamer) Snapshot(ctx context.Context) (*Result, error) {
	r, _, err := st.SnapshotGen(ctx)
	return r, err
}

// SnapshotGen is Snapshot plus the generation stamp of the window state the
// snapshot was computed from, captured atomically with the moment copy: two
// results carrying the same generation are clusterings of bit-identical
// moments. Serving layers use the stamp as a cache key — a result of
// generation g stays valid until Generation() moves past g.
func (st *Streamer) SnapshotGen(ctx context.Context) (*Result, uint64, error) {
	st.mu.RLock()
	if st.closed {
		st.mu.RUnlock()
		return nil, 0, ErrClosed
	}
	if st.eng == nil || st.eng.Len() < 2 {
		n := 0
		if st.eng != nil {
			n = st.eng.Len()
		}
		st.mu.RUnlock()
		return nil, 0, fmt.Errorf("pfg: streaming window holds %d samples, need at least 2", n)
	}
	n := st.eng.N()
	if err := validateOptions(n, st.opts.Cluster); err != nil {
		st.mu.RUnlock()
		return nil, 0, err
	}
	gen := st.eng.Generation()
	exact := st.eng.Exact()
	met := st.met
	sim := matrix.NewSymWS(st.w, n)
	sums := st.w.Float64(n)
	count, err := st.eng.CopyState(sim.Data, sums)
	st.mu.RUnlock()
	if err != nil {
		sim.Release(st.w)
		st.w.PutFloat64(sums)
		return nil, 0, err
	}

	if st.inc != nil {
		out, err := st.inc.Snapshot(ctx, st.pool, st.w, sim, sums, count, gen, exact)
		sim.Release(st.w)
		st.w.PutFloat64(sums)
		if err != nil {
			return nil, 0, err
		}
		return &Result{
			Dendrogram:      out.Dendrogram,
			EdgeWeightSum:   out.EdgeWeightSum,
			Groups:          out.Groups,
			Edges:           out.Edges,
			TicksSinceExact: out.Stale,
			Drift:           out.Drift,
		}, gen, nil
	}

	var sw obs.Stopwatch
	if met != nil {
		sw.Start()
	}
	dis := matrix.NewSymWS(st.w, n)
	err = matrix.FinishMomentsWS(ctx, st.pool, st.w, sim, dis, sums, count)
	st.w.PutFloat64(sums)
	if err != nil {
		sim.Release(st.w)
		dis.Release(st.w)
		return nil, 0, err
	}
	if met != nil {
		sw.Lap(met.SnapshotFinish)
	}
	r, err := clusterMatrixOn(ctx, st.pool, st.w, sim, dis, st.opts.Cluster)
	sim.Release(st.w)
	dis.Release(st.w)
	if met != nil && err == nil {
		sw.Lap(met.SnapshotCluster)
	}
	return r, gen, err
}

// Rebuild forces an exact recomputation of the window's moments (O(n²·T)),
// discarding accumulated roll drift; until the next slide, Snapshot results
// are bit-identical to batch Cluster over the same window.
func (st *Streamer) Rebuild() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return ErrClosed
	}
	if st.eng == nil {
		return nil
	}
	return st.eng.Rebuild(context.Background(), st.pool)
}

// Checkpoint writes a versioned, CRC-framed binary checkpoint of the
// streamer's full window state to w (see internal/ckpt for the wire form)
// and returns the generation stamp the checkpoint is atomic with: it is
// taken under the same read lock as Snapshot, so the bytes written are the
// bits of exactly that generation — pushes running concurrently land either
// entirely before or entirely after it. A streamer restored from the bytes
// (RestoreStreamer) produces Snapshot results bit-identical to this one at
// the same worker count, and its next Push advances to the same bits this
// streamer's would.
//
// A streamer that has not admitted its first push yet checkpoints its
// configuration alone (generation 0). The incremental layer's reference
// clustering is a cache, not state: it is not written, and the restored
// streamer's first snapshot re-clusters exactly. A closed streamer returns
// ErrClosed.
func (st *Streamer) Checkpoint(w io.Writer) (uint64, error) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	if st.closed {
		return 0, ErrClosed
	}
	var gen uint64
	if st.eng != nil {
		gen = st.eng.Generation()
	}
	p := ckpt.Params{
		Window:       st.window,
		RebuildEvery: st.opts.RebuildEvery,
		Precision:    st.opts.Precision,
		Inc: ckpt.IncParams{
			Enabled:        st.opts.Incremental.Enabled,
			DriftThreshold: st.opts.Incremental.DriftThreshold,
			MaxStale:       st.opts.Incremental.MaxStale,
			RepairBudget:   st.opts.Incremental.RepairBudget,
			ValidateEvery:  st.opts.Incremental.ValidateEvery,
		},
	}
	if _, err := ckpt.CheckpointTo(w, st.eng, p); err != nil {
		return 0, err
	}
	return gen, nil
}

// RestoreStreamer reconstructs a streamer from checkpoint bytes written by
// Checkpoint. The window geometry, precision, rebuild cadence, and
// incremental-layer configuration come from the checkpoint; cluster
// supplies what a checkpoint deliberately does not carry — the snapshot
// Options (method, prefix, worker budget), which are serving configuration
// rather than window state. The restored streamer resumes at the
// checkpointed generation with bit-identical moments: its snapshots and the
// checkpointed streamer's are byte-for-byte equal at the same worker count,
// and subsequent pushes evolve both through identical states.
//
// The input is fully untrusted: framing CRCs, format version, every
// declared shape, and the engine's own state invariants are validated
// (typed errors ckpt.ErrBadMagic / ErrVersion / ErrCorrupt / ErrFormat)
// before any state is accepted.
func RestoreStreamer(r io.Reader, cluster Options) (*Streamer, error) {
	w := ws.New()
	eng, p, err := ckpt.RestoreEngine(r, w)
	if err != nil {
		return nil, err
	}
	opts := StreamOptions{
		Cluster:      cluster,
		RebuildEvery: p.RebuildEvery,
		Precision:    p.Precision,
		Incremental: IncrementalOptions{
			Enabled:        p.Inc.Enabled,
			DriftThreshold: p.Inc.DriftThreshold,
			MaxStale:       p.Inc.MaxStale,
			RepairBudget:   p.Inc.RepairBudget,
			ValidateEvery:  p.Inc.ValidateEvery,
		},
	}
	st, err := newStreamer(p.Window, opts, w)
	if err != nil {
		if eng != nil {
			eng.Release()
		}
		return nil, err
	}
	if eng != nil {
		eng.SetGenHook(st.notifyWatch)
		st.eng = eng
	}
	return st, nil
}

// Len returns the number of samples currently in the window.
func (st *Streamer) Len() int {
	st.mu.RLock()
	defer st.mu.RUnlock()
	if st.eng == nil {
		return 0
	}
	return st.eng.Len()
}

// Window returns the window capacity in samples.
func (st *Streamer) Window() int { return st.window }

// Precision returns the streamer's moment-storage mode.
func (st *Streamer) Precision() Precision { return st.opts.Precision }

// MemoryBytes reports the resident bytes of the streamer's window ring and
// moment band — the figures a serving layer charges against its memory
// ceilings (both 0 before the first admitted push; Float32 sessions are half
// the Float64 figures for the same shape).
func (st *Streamer) MemoryBytes() (ringBytes, bandBytes int) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	if st.eng == nil {
		return 0, 0
	}
	return st.eng.RingBytes(), st.eng.BandBytes()
}

// Series returns the number of series, fixed by the first admitted Push
// (0 before that).
func (st *Streamer) Series() int {
	st.mu.RLock()
	defer st.mu.RUnlock()
	if st.eng == nil {
		return 0
	}
	return st.eng.N()
}

// Generation returns the monotonic version stamp of the window state: it
// advances on every admitted Push and on every drift-discarding Rebuild, and
// two snapshots observing the same generation are clusterings of
// bit-identical moments (see SnapshotGen). A streamer that has not admitted
// a sample yet — or has been closed — reports 0.
func (st *Streamer) Generation() uint64 {
	st.mu.RLock()
	defer st.mu.RUnlock()
	if st.closed || st.eng == nil {
		return 0
	}
	return st.eng.Generation()
}

// notifyWatch wakes every goroutine parked on the current watch channel by
// closing it and installing a fresh one. It is the streamer's generation
// hook (fired by the engine on every Generation advance, including the
// double bump of a push that triggers a periodic rebuild) and is also fired
// once by Close so watchers re-check state and observe ErrClosed.
func (st *Streamer) notifyWatch() {
	st.watchMu.Lock()
	close(st.watchCh)
	st.watchCh = make(chan struct{})
	st.watchMu.Unlock()
}

// Watch returns the current generation together with a channel that is
// closed the next time the generation advances (or the streamer is closed).
// The channel is fetched before the generation is read, so a bump can never
// fall between the two: if the state moves after the read, the returned
// channel is already closed (or about to be). The intended shape is a loop —
// read Watch, act if the generation moved past what you have, otherwise park
// on the channel — which is exactly how the serving layer's long-polls and
// SSE broadcasters wait for pushes without polling.
func (st *Streamer) Watch() (uint64, <-chan struct{}) {
	st.watchMu.Lock()
	ch := st.watchCh
	st.watchMu.Unlock()
	return st.Generation(), ch
}

// Exact reports whether the next Snapshot is guaranteed bit-identical to a
// batch Cluster over the same window (true while the window is filling and
// right after a rebuild).
func (st *Streamer) Exact() bool {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.eng == nil || st.eng.Exact()
}

// IncrementalStats returns the incremental layer's gate counters and
// whether the layer is enabled; a disabled streamer reports zeroes and
// false. Counters accumulate over the streamer's lifetime and may be read
// concurrently with snapshots.
func (st *Streamer) IncrementalStats() (IncrementalStats, bool) {
	if st.inc == nil {
		return IncrementalStats{}, false
	}
	s := st.inc.Stats()
	return IncrementalStats{
		Hits:         s.Hits,
		Fulls:        s.Fulls,
		FullInit:     s.FullInit,
		FullBoundary: s.FullBoundary,
		FullDrift:    s.FullDrift,
		FullStale:    s.FullStale,
		FullRepair:   s.FullRepair,
		Repairs:      s.Repairs,
	}, true
}

// Close releases the streamer's owned worker pool (if any) and marks it
// unusable: every later Push, Snapshot, SnapshotGen, or Rebuild returns
// ErrClosed (never panics, never blocks). Close is idempotent; concurrent
// Snapshots that already hold the state complete normally.
func (st *Streamer) Close() {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return
	}
	st.closed = true
	if st.ownPool {
		st.pool.Close()
	}
	// Wake watchers so they re-read state and see the closed streamer
	// (Generation now reports 0, snapshots return ErrClosed) instead of
	// parking forever on a channel no push will ever close.
	st.notifyWatch()
}

// ARI computes the Adjusted Rand Index between two flat clusterings.
func ARI(a, b []int) (float64, error) { return metrics.ARI(a, b) }

// AMI computes the Adjusted Mutual Information between two flat clusterings.
func AMI(a, b []int) (float64, error) { return metrics.AMI(a, b) }
