package pfg

import (
	"context"
	"fmt"

	"pfg/internal/core"
	"pfg/internal/dendro"
	"pfg/internal/exec"
	"pfg/internal/hac"
	"pfg/internal/matrix"
	"pfg/internal/metrics"
	"pfg/internal/tmfg"
	"pfg/internal/ws"
)

// Matrix is a dense symmetric matrix (similarities or dissimilarities).
type Matrix = matrix.Sym

// Dendrogram is a hierarchical clustering tree; leaves are the input
// objects and Cut(k) produces flat clusterings.
type Dendrogram = dendro.Dendrogram

// Method selects the clustering algorithm for Cluster.
type Method int

const (
	// TMFGDBHT is the paper's method: parallel TMFG + parallel DBHT.
	TMFGDBHT Method = iota
	// PMFGDBHT is the slower PMFG-based baseline.
	PMFGDBHT
	// CompleteLinkage is complete-linkage HAC on the dissimilarity matrix.
	CompleteLinkage
	// AverageLinkage is average-linkage HAC on the dissimilarity matrix.
	AverageLinkage
)

func (m Method) String() string {
	switch m {
	case TMFGDBHT:
		return "tmfg-dbht"
	case PMFGDBHT:
		return "pmfg-dbht"
	case CompleteLinkage:
		return "complete-linkage"
	case AverageLinkage:
		return "average-linkage"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// Options configures Cluster.
type Options struct {
	// Method selects the algorithm (default TMFGDBHT).
	Method Method
	// Prefix is the TMFG batch size (default 10, the paper's sweet spot;
	// 1 reproduces the sequential TMFG exactly).
	Prefix int
	// Workers bounds the number of goroutines the call may run concurrently
	// (0 = GOMAXPROCS, via a shared process-wide pool). A positive value
	// gives the call its own bounded worker pool, so concurrent Cluster
	// calls with explicit budgets cannot oversubscribe the machine; 1 runs
	// the whole pipeline sequentially and deterministically on the calling
	// goroutine.
	Workers int
}

// Result is a hierarchical clustering outcome.
type Result struct {
	// Dendrogram is the full merge tree.
	Dendrogram *Dendrogram
	// EdgeWeightSum is the similarity captured by the filtered graph
	// (0 for non-graph methods).
	EdgeWeightSum float64
	// Groups is the number of DBHT converging-bubble groups (0 for HAC).
	Groups int
}

// Cut returns flat cluster labels in [0, k).
func (r *Result) Cut(k int) ([]int, error) { return r.Dendrogram.Cut(k) }

// Newick serializes the dendrogram in Newick format, with optional leaf
// names (nil for L0, L1, ...).
func (r *Result) Newick(names []string) (string, error) { return r.Dendrogram.Newick(names) }

// CopheneticCorrelation measures how faithfully the dendrogram's merge
// heights reproduce the given dissimilarities (1 = perfect). Note that DBHT
// heights are ordinal by design, so this is most meaningful for the HAC
// methods.
func (r *Result) CopheneticCorrelation(dis *Matrix) (float64, error) {
	return r.Dendrogram.CopheneticCorrelation(dis.Data)
}

// Pearson computes the Pearson correlation matrix of a time-series
// collection (one row per series, equal lengths).
func Pearson(series [][]float64) (*Matrix, error) { return matrix.Pearson(series) }

// Dissimilarity converts correlations into the metric dissimilarity
// d = sqrt(2(1−p)).
func Dissimilarity(corr *Matrix) *Matrix { return matrix.Dissimilarity(corr) }

// Cluster computes a hierarchical clustering of raw time series: Pearson
// correlation → filtered graph (or HAC) → dendrogram. It is
// ClusterContext with a background (never-cancelled) context.
func Cluster(series [][]float64, opts Options) (*Result, error) {
	return ClusterContext(context.Background(), series, opts)
}

// ClusterContext is Cluster with cooperative cancellation: the pipeline
// checks ctx at chunk and stage boundaries and returns ctx.Err() promptly
// once ctx is cancelled or its deadline passes. The concurrency of the call
// is bounded by opts.Workers (see Options).
//
// Each call owns one ws.Workspace from the process-wide pool: every
// intermediate of the pipeline (correlation and dissimilarity matrices, the
// filtered graph, APSP, and all scratch) is drawn from it and returned
// before the call ends, so repeated calls on same-shaped inputs run at
// steady state with near-zero allocation churn.
func ClusterContext(ctx context.Context, series [][]float64, opts Options) (*Result, error) {
	// Reject invalid options and undersized inputs before the O(n²·T)
	// correlation stage runs.
	if err := validateOptions(len(series), opts); err != nil {
		return nil, err
	}
	pool, release := poolFor(opts)
	defer release()
	w := ws.Get()
	defer ws.Put(w)
	sim, dis, err := core.CorrelateWS(ctx, pool, w, series)
	if err != nil {
		return nil, err
	}
	r, err := clusterMatrixOn(ctx, pool, w, sim, dis, opts)
	// The matrices are internal to this call; nothing in Result references
	// them.
	sim.Release(w)
	dis.Release(w)
	return r, err
}

// ClusterMatrix clusters from a precomputed similarity matrix and optional
// dissimilarity matrix (pass nil to derive it as sqrt(2(1−s))).
func ClusterMatrix(sim, dis *Matrix, opts Options) (*Result, error) {
	return ClusterMatrixContext(context.Background(), sim, dis, opts)
}

// ClusterMatrixContext is ClusterMatrix with cooperative cancellation and a
// per-call worker budget, like ClusterContext. The caller keeps ownership
// of sim and dis; only the call's internal scratch is pooled.
func ClusterMatrixContext(ctx context.Context, sim, dis *Matrix, opts Options) (*Result, error) {
	pool, release := poolFor(opts)
	defer release()
	w := ws.Get()
	defer ws.Put(w)
	return clusterMatrixOn(ctx, pool, w, sim, dis, opts)
}

// poolFor maps Options.Workers to an execution pool: the shared
// GOMAXPROCS-sized pool for 0, or a fresh bounded pool (released when the
// call finishes) for an explicit budget.
func poolFor(opts Options) (*exec.Pool, func()) {
	if opts.Workers <= 0 {
		return exec.Default(), func() {}
	}
	p := exec.New(opts.Workers)
	return p, p.Close
}

// validateOptions rejects invalid options and inputs too small for the
// selected method with a clear error, instead of a panic deep inside a
// pipeline stage (or wasted work before a later rejection).
func validateOptions(n int, opts Options) error {
	if opts.Prefix < 0 {
		return fmt.Errorf("pfg: Prefix must be ≥ 0 (0 selects the default), got %d", opts.Prefix)
	}
	switch opts.Method {
	case TMFGDBHT, PMFGDBHT:
		if n < 4 {
			return fmt.Errorf("pfg: %v needs at least 4 series, have %d", opts.Method, n)
		}
	case CompleteLinkage, AverageLinkage:
		if n < 2 {
			return fmt.Errorf("pfg: %v needs at least 2 series, have %d", opts.Method, n)
		}
	}
	return nil
}

func clusterMatrixOn(ctx context.Context, pool *exec.Pool, w *ws.Workspace, sim, dis *Matrix, opts Options) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := validateOptions(sim.N, opts); err != nil {
		return nil, err
	}
	if opts.Prefix == 0 {
		opts.Prefix = 10
	}
	switch opts.Method {
	case TMFGDBHT:
		r, err := core.TMFGDBHTWS(ctx, pool, w, sim, dis, opts.Prefix)
		if err != nil {
			return nil, err
		}
		return &Result{Dendrogram: r.Dendrogram, EdgeWeightSum: r.EdgeWeightSum, Groups: r.Groups}, nil
	case PMFGDBHT:
		r, err := core.PMFGDBHTCtx(ctx, pool, sim, dis)
		if err != nil {
			return nil, err
		}
		return &Result{Dendrogram: r.Dendrogram, EdgeWeightSum: r.EdgeWeightSum, Groups: r.Groups}, nil
	case CompleteLinkage, AverageLinkage:
		ownDis := false
		if dis == nil {
			var err error
			dis, err = matrix.DissimilarityWS(ctx, pool, w, sim)
			if err != nil {
				return nil, err
			}
			ownDis = true
		}
		linkage := hac.Complete
		if opts.Method == AverageLinkage {
			linkage = hac.Average
		}
		r, err := core.HACWS(ctx, pool, w, dis, linkage)
		if ownDis {
			dis.Release(w)
		}
		if err != nil {
			return nil, err
		}
		return &Result{Dendrogram: r.Dendrogram}, nil
	default:
		return nil, fmt.Errorf("pfg: unknown method %v", opts.Method)
	}
}

// TMFG builds just the filtered graph from a similarity matrix with the
// given prefix, returning the undirected edge list (3n−6 edges) and the
// captured edge weight.
func TMFG(sim *Matrix, prefix int) (edges [][2]int32, weight float64, err error) {
	r, err := tmfg.Build(sim, prefix)
	if err != nil {
		return nil, 0, err
	}
	return r.Edges, r.EdgeWeightSum(sim), nil
}

// ARI computes the Adjusted Rand Index between two flat clusterings.
func ARI(a, b []int) (float64, error) { return metrics.ARI(a, b) }

// AMI computes the Adjusted Mutual Information between two flat clusterings.
func AMI(a, b []int) (float64, error) { return metrics.AMI(a, b) }
