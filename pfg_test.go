package pfg

import (
	"strings"
	"testing"

	"pfg/internal/tsgen"
)

func TestClusterEndToEnd(t *testing.T) {
	ds := tsgen.GenerateClassed("api", 120, 96, 4, 0.3, 14)
	res, err := Cluster(ds.Series, Options{Prefix: 2})
	if err != nil {
		t.Fatal(err)
	}
	labels, err := res.Cut(4)
	if err != nil {
		t.Fatal(err)
	}
	ari, err := ARI(ds.Labels, labels)
	if err != nil {
		t.Fatal(err)
	}
	if ari < 0.8 {
		t.Fatalf("API pipeline ARI %.3f < 0.8", ari)
	}
	if res.EdgeWeightSum <= 0 || res.Groups < 1 {
		t.Fatalf("missing result fields: %+v", res)
	}
}

func TestClusterAllMethods(t *testing.T) {
	ds := tsgen.GenerateClassed("api", 60, 64, 3, 0.3, 8)
	for _, m := range []Method{TMFGDBHT, PMFGDBHT, CompleteLinkage, AverageLinkage} {
		res, err := Cluster(ds.Series, Options{Method: m, Prefix: 1})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		labels, err := res.Cut(3)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if len(labels) != 60 {
			t.Fatalf("%v: %d labels", m, len(labels))
		}
	}
}

func TestClusterMatrixDefaultDissimilarity(t *testing.T) {
	ds := tsgen.GenerateClassed("api", 50, 64, 2, 0.3, 9)
	sim, err := Pearson(ds.Series)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ClusterMatrix(sim, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := res.Cut(2); err != nil {
		t.Fatal(err)
	}
}

func TestTMFGFacade(t *testing.T) {
	ds := tsgen.GenerateClassed("api", 40, 64, 2, 0.3, 10)
	sim, err := Pearson(ds.Series)
	if err != nil {
		t.Fatal(err)
	}
	edges, weight, err := TMFG(sim, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(edges) != 3*40-6 {
		t.Fatalf("%d edges", len(edges))
	}
	if weight <= 0 {
		t.Fatalf("weight %v", weight)
	}
}

func TestMethodString(t *testing.T) {
	if TMFGDBHT.String() != "tmfg-dbht" || Method(99).String() == "" {
		t.Fatal("bad method names")
	}
}

func TestUnknownMethodRejected(t *testing.T) {
	ds := tsgen.GenerateClassed("api", 20, 32, 2, 0.3, 11)
	if _, err := Cluster(ds.Series, Options{Method: Method(99)}); err == nil {
		t.Fatal("unknown method accepted")
	}
}

func TestNegativePrefixRejected(t *testing.T) {
	ds := tsgen.GenerateClassed("api", 20, 32, 2, 0.3, 11)
	for _, m := range []Method{TMFGDBHT, PMFGDBHT, CompleteLinkage, AverageLinkage} {
		_, err := Cluster(ds.Series, Options{Method: m, Prefix: -1})
		if err == nil {
			t.Fatalf("%v: negative Prefix accepted", m)
		}
		if !strings.Contains(err.Error(), "Prefix") {
			t.Fatalf("%v: unhelpful error for negative Prefix: %v", m, err)
		}
	}
}

// TestUndersizedInputsRejected checks that inputs too small for the selected
// method produce a clear validation error from Cluster/ClusterMatrix rather
// than a panic deep inside the pipeline.
func TestUndersizedInputsRejected(t *testing.T) {
	for _, tc := range []struct {
		method Method
		n      int // one fewer series than the method's minimum
	}{
		{TMFGDBHT, 3},
		{PMFGDBHT, 3},
		{CompleteLinkage, 1},
		{AverageLinkage, 1},
	} {
		ds := tsgen.GenerateClassed("api", tc.n, 32, 1, 0.3, 11)
		_, err := Cluster(ds.Series, Options{Method: tc.method})
		if err == nil {
			t.Fatalf("%v: n=%d accepted", tc.method, tc.n)
		}
		if !strings.Contains(err.Error(), tc.method.String()) {
			t.Fatalf("%v: error does not name the method: %v", tc.method, err)
		}
		// The matrix entry point must validate identically.
		sim, perr := Pearson(ds.Series)
		if perr != nil {
			t.Fatal(perr)
		}
		if _, err := ClusterMatrix(sim, nil, Options{Method: tc.method}); err == nil {
			t.Fatalf("%v: ClusterMatrix accepted n=%d", tc.method, tc.n)
		}
		// One more series reaches the minimum and must succeed.
		ds2 := tsgen.GenerateClassed("api", tc.n+1, 32, 1, 0.3, 11)
		if _, err := Cluster(ds2.Series, Options{Method: tc.method}); err != nil {
			t.Fatalf("%v: minimum size n=%d rejected: %v", tc.method, tc.n+1, err)
		}
	}
}

func TestResultNewickAndCophenetic(t *testing.T) {
	ds := tsgen.GenerateClassed("api", 30, 48, 2, 0.3, 12)
	sim, err := Pearson(ds.Series)
	if err != nil {
		t.Fatal(err)
	}
	dis := Dissimilarity(sim)
	res, err := ClusterMatrix(sim, dis, Options{Method: CompleteLinkage})
	if err != nil {
		t.Fatal(err)
	}
	nw, err := res.Newick(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(nw) == 0 || nw[len(nw)-1] != ';' {
		t.Fatalf("bad newick output %q", nw)
	}
	cc, err := res.CopheneticCorrelation(dis)
	if err != nil {
		t.Fatal(err)
	}
	if cc <= 0 || cc > 1 {
		t.Fatalf("cophenetic correlation %v out of range", cc)
	}
}
