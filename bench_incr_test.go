package pfg

// Incremental serving benchmarks, the numbers recorded in BENCH_incr.json:
// the drift-bounded incremental tick (Push + Snapshot served from the
// reference clustering while δ ≤ ε) against the exact tick (every Snapshot
// re-clusters the window) it amortizes. Per case the two sides run
// back-to-back on the same pregenerated window content:
//
//	go test -bench 'BenchmarkStreamTickIncremental' -benchmem -run '^$' .
//
// Both sides keep the periodic exact rebuild inside the measured loop
// (RebuildEvery=256 slides), and the incremental side additionally pays its
// own gate-forced exact re-clusterings (staleness at MaxStale=64, drift at
// the default ε=0.02), so its ns/op is the honest amortized serving cost,
// not the pure hit cost.

import (
	"context"
	"fmt"
	"testing"
)

// benchIncrRebuildEvery puts periodic exact rebuilds inside the measured
// loop: every 256 slides the engine recomputes the moments exactly and the
// incremental layer's next snapshot re-clusters from scratch (an engine-
// exact boundary always forces a full), on top of the incremental layer's
// own staleness gate firing every MaxStale=64 snapshots.
const benchIncrRebuildEvery = 256

// benchStreamSteadyState fills the window, takes one warm-up snapshot, then
// measures b.N steady-state ticks (Push + Snapshot).
func benchStreamSteadyState(b *testing.B, st *Streamer, ticks [][]float64) {
	b.Helper()
	for _, x := range ticks {
		if err := st.Push(x); err != nil {
			b.Fatal(err)
		}
	}
	if _, err := st.Snapshot(context.Background()); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := st.Push(ticks[i%len(ticks)]); err != nil {
			b.Fatal(err)
		}
		if _, err := st.Snapshot(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStreamTickIncremental measures, per window shape, the exact and
// the incremental serving tick interleaved (the incremental layer runs with
// its production defaults: ε=0.02, MaxStale=64, no strict revalidation).
// Workers:1 keeps both sides deterministic and single-threaded.
func BenchmarkStreamTickIncremental(b *testing.B) {
	for _, tc := range streamBenchCases {
		b.Run(fmt.Sprintf("%v/n=%d/W=%d", tc.method, tc.n, benchStreamWindow), func(b *testing.B) {
			ticks := benchTicks(tc.n)
			for _, side := range []struct {
				name string
				inc  IncrementalOptions
			}{
				{"exact", IncrementalOptions{}},
				{"incremental", IncrementalOptions{Enabled: true}},
			} {
				b.Run(side.name, func(b *testing.B) {
					st, err := NewStreamer(benchStreamWindow, StreamOptions{
						Cluster:      Options{Method: tc.method, Prefix: 10, Workers: 1},
						RebuildEvery: benchIncrRebuildEvery,
						Incremental:  side.inc,
					})
					if err != nil {
						b.Fatal(err)
					}
					defer st.Close()
					benchStreamSteadyState(b, st, ticks)
				})
			}
		})
	}
}
