package pfg

// Tests for the stable Result JSON wire form, the Streamer's post-Close
// sentinel contract, and the generation stamp that keys serving-layer
// snapshot caches.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"math"
	"reflect"
	"strings"
	"testing"

	"pfg/internal/tsgen"
)

func clusterFixture(t *testing.T, method Method, n int) *Result {
	t.Helper()
	ds := tsgen.GenerateClassed("wire", n, 64, 3, 0.5, 11)
	r, err := Cluster(ds.Series, Options{Method: method, Workers: 1})
	if err != nil {
		t.Fatalf("%v cluster: %v", method, err)
	}
	return r
}

func TestResultJSONRoundTrip(t *testing.T) {
	for _, method := range []Method{TMFGDBHT, CompleteLinkage} {
		t.Run(method.String(), func(t *testing.T) {
			n := 24
			r := clusterFixture(t, method, n)
			v, err := r.JSON([]int{2, 5}, nil)
			if err != nil {
				t.Fatal(err)
			}
			if v.N != n {
				t.Fatalf("N = %d, want %d", v.N, n)
			}
			if len(v.Cuts) != 2 || len(v.Cuts["2"]) != n || len(v.Cuts["5"]) != n {
				t.Fatalf("bad cuts: %v", v.Cuts)
			}
			if !strings.HasSuffix(v.Newick, ";") {
				t.Fatalf("newick %q does not end with ';'", v.Newick)
			}
			if method == TMFGDBHT {
				if len(v.Edges) != 3*n-6 {
					t.Fatalf("%d edges, want %d", len(v.Edges), 3*n-6)
				}
				for i, e := range v.Edges {
					if e[0] >= e[1] {
						t.Fatalf("edge %d = %v not canonical (u < v)", i, e)
					}
					if i > 0 && !(v.Edges[i-1][0] < e[0] ||
						(v.Edges[i-1][0] == e[0] && v.Edges[i-1][1] < e[1])) {
						t.Fatalf("edges not sorted at %d: %v, %v", i, v.Edges[i-1], e)
					}
				}
				if v.Groups < 1 || v.EdgeWeightSum == 0 {
					t.Fatalf("missing graph metadata: groups=%d weight=%g", v.Groups, v.EdgeWeightSum)
				}
			} else if v.Edges != nil || v.Groups != 0 {
				t.Fatalf("HAC view carries graph fields: %+v", v)
			}

			// Round trip: marshal → unmarshal reproduces the exact view, and
			// marshaling is byte-stable across calls.
			b1, err := json.Marshal(v)
			if err != nil {
				t.Fatal(err)
			}
			var back ResultJSON
			if err := json.Unmarshal(b1, &back); err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(&back, v) {
				t.Fatalf("round trip changed the view:\n got %+v\nwant %+v", back, v)
			}
			b2, err := json.Marshal(&back)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(b1, b2) {
				t.Fatalf("marshal not byte-stable:\n%s\n%s", b1, b2)
			}
		})
	}
}

func TestResultJSONBadCut(t *testing.T) {
	r := clusterFixture(t, CompleteLinkage, 8)
	if _, err := r.JSON([]int{0}, nil); err == nil {
		t.Fatal("k=0 cut accepted")
	}
	if _, err := r.JSON([]int{9}, nil); err == nil {
		t.Fatal("k>n cut accepted")
	}
}

func TestStreamerClosedSentinel(t *testing.T) {
	st, err := NewStreamer(8, StreamOptions{Cluster: Options{Method: CompleteLinkage, Workers: 1}})
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range [][]float64{{1, 2, 3, 4}, {2, 1, 4, 3}, {0, 5, 1, 2}} {
		if err := st.Push(x); err != nil {
			t.Fatal(err)
		}
	}
	st.Close()
	st.Close() // idempotent

	if err := st.Push([]float64{1, 2, 3, 4}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Push after Close: %v, want ErrClosed", err)
	}
	if _, err := st.Snapshot(context.Background()); !errors.Is(err, ErrClosed) {
		t.Fatalf("Snapshot after Close: %v, want ErrClosed", err)
	}
	if _, _, err := st.SnapshotGen(context.Background()); !errors.Is(err, ErrClosed) {
		t.Fatalf("SnapshotGen after Close: %v, want ErrClosed", err)
	}
	if err := st.Rebuild(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Rebuild after Close: %v, want ErrClosed", err)
	}
	if g := st.Generation(); g != 0 {
		t.Fatalf("Generation after Close = %d, want 0", g)
	}
}

func TestStreamerGeneration(t *testing.T) {
	const n, window = 6, 4
	ticks := tickStream(t, n, 10, 21)
	st, err := NewStreamer(window, StreamOptions{Cluster: Options{Method: CompleteLinkage, Workers: 1}})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	if g := st.Generation(); g != 0 {
		t.Fatalf("initial generation %d, want 0", g)
	}
	var last uint64
	for i, x := range ticks {
		if err := st.Push(x); err != nil {
			t.Fatal(err)
		}
		g := st.Generation()
		if g <= last {
			t.Fatalf("push %d: generation %d did not advance past %d", i, g, last)
		}
		last = g
	}

	// A rejected push must not move the generation (the window is untouched).
	bad := make([]float64, n)
	bad[2] = math.NaN()
	if err := st.Push(bad); err == nil {
		t.Fatal("non-finite sample admitted")
	}
	if g := st.Generation(); g != last {
		t.Fatalf("rejected push moved generation %d → %d", last, g)
	}

	// The window has slid (10 pushes > window 4), so state is drifted and a
	// rebuild discards drift: the generation must advance. A second rebuild
	// of the now-exact state must keep it.
	if st.Exact() {
		t.Fatal("expected drifted state after slides")
	}
	if err := st.Rebuild(); err != nil {
		t.Fatal(err)
	}
	afterRebuild := st.Generation()
	if afterRebuild <= last {
		t.Fatalf("drift-discarding rebuild kept generation %d", last)
	}
	if err := st.Rebuild(); err != nil {
		t.Fatal(err)
	}
	if g := st.Generation(); g != afterRebuild {
		t.Fatalf("exact rebuild moved generation %d → %d", afterRebuild, g)
	}

	// SnapshotGen stamps the generation it clustered.
	res, gen, err := st.SnapshotGen(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res == nil || gen != afterRebuild {
		t.Fatalf("SnapshotGen stamp %d, want %d", gen, afterRebuild)
	}
}
