package pfg

import (
	"context"
	"reflect"
	"testing"
	"time"

	"pfg/internal/tsgen"
)

var allMethods = []Method{TMFGDBHT, PMFGDBHT, CompleteLinkage, AverageLinkage}

// TestClusterContextCancelledBeforeStart: a context cancelled before the
// call must yield ctx.Err() for every method, with and without a per-call
// worker budget, and must not run the pipeline.
func TestClusterContextCancelledBeforeStart(t *testing.T) {
	ds := tsgen.GenerateClassed("api", 40, 64, 2, 0.3, 5)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, m := range allMethods {
		for _, workers := range []int{0, 1, 2} {
			res, err := ClusterContext(ctx, ds.Series, Options{Method: m, Workers: workers})
			if err != context.Canceled {
				t.Fatalf("%v workers=%d: err=%v want context.Canceled", m, workers, err)
			}
			if res != nil {
				t.Fatalf("%v workers=%d: non-nil result on cancellation", m, workers)
			}
		}
	}
	sim, err := Pearson(ds.Series)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range allMethods {
		if _, err := ClusterMatrixContext(ctx, sim, nil, Options{Method: m}); err != context.Canceled {
			t.Fatalf("ClusterMatrixContext %v: err=%v want context.Canceled", m, err)
		}
	}
}

// TestClusterContextDeadlineExceeded: an already-expired deadline surfaces
// as context.DeadlineExceeded.
func TestClusterContextDeadlineExceeded(t *testing.T) {
	ds := tsgen.GenerateClassed("api", 40, 64, 2, 0.3, 6)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if _, err := ClusterContext(ctx, ds.Series, Options{}); err != context.DeadlineExceeded {
		t.Fatalf("err=%v want context.DeadlineExceeded", err)
	}
}

// TestClusterContextCancelMidRun cancels a slow PMFG run shortly after it
// starts. The quadratic planarity-test loop checks the context per
// candidate edge, so the call must return context.Canceled promptly rather
// than grinding to completion (which takes orders of magnitude longer) or
// deadlocking.
func TestClusterContextCancelMidRun(t *testing.T) {
	ds := tsgen.GenerateClassed("api", 130, 64, 4, 0.3, 7)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	start := time.Now()
	go func() {
		_, err := ClusterContext(ctx, ds.Series, Options{Method: PMFGDBHT})
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err != context.Canceled {
			t.Fatalf("err=%v want context.Canceled (after %v)", err, time.Since(start))
		}
	case <-time.After(30 * time.Second):
		t.Fatal("ClusterContext did not return after cancellation: deadlock or missing checks")
	}
}

// TestClusterContextCancelMidRunTMFG does the same for the paper's main
// pipeline, whose cancellation points are the exec.Pool chunk boundaries and
// the TMFG round loop.
func TestClusterContextCancelMidRunTMFG(t *testing.T) {
	if testing.Short() {
		t.Skip("larger input; skipped in -short mode")
	}
	ds := tsgen.GenerateClassed("api", 1200, 64, 8, 0.3, 8)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() {
		_, err := ClusterContext(ctx, ds.Series, Options{Method: TMFGDBHT, Prefix: 10})
		done <- err
	}()
	time.Sleep(2 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err != context.Canceled {
			t.Fatalf("err=%v want context.Canceled", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("ClusterContext did not return after cancellation")
	}
}

// TestWorkersOneDeterministic: with a single-worker budget the whole
// pipeline runs sequentially, so repeated runs must produce identical
// dendrograms (same merges, same heights, bit for bit).
func TestWorkersOneDeterministic(t *testing.T) {
	ds := tsgen.GenerateClassed("api", 100, 64, 4, 0.3, 11)
	for _, m := range []Method{TMFGDBHT, CompleteLinkage} {
		var first *Result
		for run := 0; run < 3; run++ {
			res, err := ClusterContext(context.Background(), ds.Series, Options{Method: m, Workers: 1})
			if err != nil {
				t.Fatalf("%v run %d: %v", m, run, err)
			}
			if first == nil {
				first = res
				continue
			}
			if !reflect.DeepEqual(first.Dendrogram.Merges, res.Dendrogram.Merges) {
				t.Fatalf("%v: run %d dendrogram differs from run 0", m, run)
			}
			if first.EdgeWeightSum != res.EdgeWeightSum || first.Groups != res.Groups {
				t.Fatalf("%v: run %d scalar outputs differ", m, run)
			}
		}
	}
}

// TestWorkersBudgetMatchesDefault: an explicit budget must not change the
// result relative to the shared default pool (the construction is
// deterministic for a fixed input regardless of worker count).
func TestWorkersBudgetMatchesDefault(t *testing.T) {
	ds := tsgen.GenerateClassed("api", 80, 64, 4, 0.3, 12)
	base, err := Cluster(ds.Series, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 3} {
		res, err := ClusterContext(context.Background(), ds.Series, Options{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(base.Dendrogram.Merges, res.Dendrogram.Merges) {
			t.Fatalf("workers=%d: dendrogram differs from default-pool run", workers)
		}
	}
}
