package pfg_test

// Push-delivery benchmarks (BENCH_push.json): the cost and wire weight of
// delivering one window update to S subscribers, SSE+delta (one push → one
// clustering run → one encode → S queue offers, consecutive generations sent
// as sparse deltas) vs the polling baseline (every client re-GETs the full
// snapshot body after every push). The headline metric is bytes/update: the
// mean wire bytes one subscriber receives per generation, against the full
// snapshot body it would have polled.
//
// Unlike bench_serve_test.go these run against a real listener
// (httptest.NewServer), not recorders: SSE needs a flushable, long-lived
// connection, so the numbers include socket transport for both modes.
//
// Run: go test -bench BenchmarkPushDelivery -run '^$' -benchtime 20x .

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"pfg/internal/serve"
)

// sseSub is one subscribed benchmark client: a live event stream plus a
// frame reader that reports how many wire bytes each event cost.
type sseSub struct {
	body io.ReadCloser
	br   *bufio.Reader
}

func dialEvents(tb testing.TB, base string) *sseSub {
	tb.Helper()
	resp, err := http.Get(base + "/v1/sessions/bench/events?k=8")
	if err != nil {
		tb.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		tb.Fatalf("subscribe: status %d", resp.StatusCode)
	}
	sub := &sseSub{body: resp.Body, br: bufio.NewReader(resp.Body)}
	tb.Cleanup(func() { sub.body.Close() })
	return sub
}

// readEvent consumes one SSE frame and returns its name and wire size.
func (s *sseSub) readEvent(tb testing.TB) (string, int) {
	tb.Helper()
	var name string
	var size int
	for {
		line, err := s.br.ReadString('\n')
		if err != nil {
			tb.Fatalf("reading SSE frame: %v", err)
		}
		size += len(line)
		line = strings.TrimRight(line, "\n")
		if line == "" && name != "" {
			return name, size
		}
		if rest, ok := strings.CutPrefix(line, "event: "); ok {
			name = rest
		}
	}
}

// newPushServer stands up a real listener with one full-window tmfg-dbht
// session and returns its base URL plus the full snapshot body size (the
// polling baseline's per-update wire cost).
func newPushServer(tb testing.TB, window int, bodies [][]byte) (string, int) {
	tb.Helper()
	srv := serve.New(serve.Options{})
	ts := httptest.NewServer(srv.Handler())
	tb.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	post := func(path string, body []byte) {
		resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(body))
		if err != nil {
			tb.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusCreated {
			tb.Fatalf("POST %s: status %d", path, resp.StatusCode)
		}
	}
	// The session runs the incremental serving layer (PR 6): while the
	// window's correlation drift stays inside the threshold, snapshots serve
	// the same reference clustering, so consecutive generations differ only
	// in their staleness scalars and deltas collapse to a few hundred bytes.
	// That is the regime push-based delivery is built for — a quiet window
	// re-polled by many clients — with the drift gate and MaxStale bounding
	// how long structure may be reused before a full retransmit.
	create, err := json.Marshal(map[string]any{
		"id": "bench", "window": window, "method": "tmfg-dbht", "rebuild_every": -1,
		"incremental": map[string]any{"drift_threshold": 0.2, "max_stale": 64},
	})
	if err != nil {
		tb.Fatal(err)
	}
	post("/v1/sessions", create)
	for _, body := range bodies[:window] {
		post("/v1/sessions/bench/push", body)
	}
	// Warm the caches and measure the full body (what one poll costs).
	resp, err := http.Get(ts.URL + "/v1/sessions/bench/snapshot?k=8")
	if err != nil {
		tb.Fatal(err)
	}
	full, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		tb.Fatalf("warm snapshot: status %d %s", resp.StatusCode, full)
	}
	return ts.URL, len(full)
}

func pushOne(tb testing.TB, base string, body []byte) {
	tb.Helper()
	resp, err := http.Post(base+"/v1/sessions/bench/push", "application/json", bytes.NewReader(body))
	if err != nil {
		tb.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		tb.Fatalf("push: status %d", resp.StatusCode)
	}
}

func BenchmarkPushDelivery(b *testing.B) {
	const (
		n      = 512
		window = 256
		spare  = 256 // update ticks the delivery loops cycle through
	)
	_, bodies := benchTicks(b, n, window+spare)

	for _, subs := range []int{1, 32, 256} {
		b.Run(fmt.Sprintf("sse/subs=%d", subs), func(b *testing.B) {
			base, fullLen := newPushServer(b, window, bodies)
			clients := make([]*sseSub, subs)
			for i := range clients {
				clients[i] = dialEvents(b, base)
				if name, _ := clients[i].readEvent(b); name != "snapshot" {
					b.Fatalf("subscriber %d first event %q, want snapshot", i, name)
				}
			}
			var wireBytes, deltas, fulls int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// One delivery tick: the push bumps the generation; every
				// subscriber then receives that one update (the read blocks
				// until the broadcaster's single clustering run fans out).
				pushOne(b, base, bodies[window+i%spare])
				for _, c := range clients {
					name, size := c.readEvent(b)
					wireBytes += int64(size)
					switch name {
					case "delta":
						deltas++
					case "snapshot":
						fulls++
					default:
						b.Fatalf("unexpected event %q", name)
					}
				}
			}
			b.StopTimer()
			updates := int64(b.N) * int64(subs)
			b.ReportMetric(float64(wireBytes)/float64(updates), "bytes/update")
			b.ReportMetric(float64(fullLen), "fullbody_bytes")
			b.ReportMetric(float64(deltas)/float64(updates), "delta_fraction")
		})
	}

	// Polling baseline: after every push, each of 32 clients re-GETs the
	// full snapshot. Generation-cache hits make the server-side cost cheap,
	// but every poll still ships the entire body.
	b.Run("poll/pollers=32", func(b *testing.B) {
		const pollers = 32
		base, _ := newPushServer(b, window, bodies)
		var wireBytes int64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			pushOne(b, base, bodies[window+i%spare])
			for p := 0; p < pollers; p++ {
				resp, err := http.Get(base + "/v1/sessions/bench/snapshot?k=8")
				if err != nil {
					b.Fatal(err)
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil || resp.StatusCode != http.StatusOK {
					b.Fatalf("poll: status %d err %v", resp.StatusCode, err)
				}
				wireBytes += int64(len(body))
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(wireBytes)/float64(int64(b.N)*pollers), "bytes/update")
	})

	// Conditional-read pair: the same unchanged-window re-poll, as a full
	// cached GET (the body cache's best case) and as an If-Generation 304
	// (no cut parsing, no cache probe, no body). These two run in-process
	// like BenchmarkServeSnapshot — the server-side cost per request,
	// without socket transport masking the difference. The request is built
	// once and the response writer reused (statusSink below), so neither
	// loop times the test harness allocating recorders; what remains is
	// routing + handler + body write, the same floor for both.
	b.Run("conditional/full-get", func(b *testing.B) {
		h := newServeSession(b, "tmfg-dbht", window, bodies)
		if rec := serveReq(b, h, "GET", "/v1/sessions/bench/snapshot?k=8", nil); rec.Code != http.StatusOK {
			b.Fatalf("warm snapshot: %d %s", rec.Code, rec.Body)
		}
		req := httptest.NewRequest("GET", "/v1/sessions/bench/snapshot?k=8", nil)
		sink := newStatusSink()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sink.reset()
			h.ServeHTTP(sink, req)
			if sink.code != http.StatusOK {
				b.Fatalf("cached GET: %d", sink.code)
			}
		}
	})
	b.Run("conditional/304", func(b *testing.B) {
		h := newServeSession(b, "tmfg-dbht", window, bodies)
		rec := serveReq(b, h, "GET", "/v1/sessions/bench/snapshot?k=8", nil)
		if rec.Code != http.StatusOK {
			b.Fatalf("warm snapshot: %d %s", rec.Code, rec.Body)
		}
		var snap struct {
			Generation uint64 `json:"generation"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
			b.Fatal(err)
		}
		// The cheap re-poll shape: the precondition in the header, no query
		// string to parse at all on the unchanged path.
		req := httptest.NewRequest("GET", "/v1/sessions/bench/snapshot", nil)
		req.Header.Set("If-Generation", fmt.Sprint(snap.Generation))
		sink := newStatusSink()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sink.reset()
			h.ServeHTTP(sink, req)
			if sink.code != http.StatusNotModified {
				b.Fatalf("conditional: status %d, want 304", sink.code)
			}
		}
	})
}

// statusSink is a reusable ResponseWriter: it records the status and copies
// the body into a recycled scratch buffer — the memcpy a real server pays
// writing the body out — so benchmark loops time the server's work, not
// httptest recorder allocation.
type statusSink struct {
	hdr  http.Header
	buf  []byte
	code int
}

func newStatusSink() *statusSink { return &statusSink{hdr: make(http.Header)} }

func (s *statusSink) reset() {
	s.code = 0
	clear(s.hdr)
}

func (s *statusSink) Header() http.Header { return s.hdr }

func (s *statusSink) WriteHeader(code int) {
	if s.code == 0 {
		s.code = code
	}
}

func (s *statusSink) Write(p []byte) (int, error) {
	s.WriteHeader(http.StatusOK)
	if len(s.buf) < len(p) {
		s.buf = make([]byte, len(p))
	}
	copy(s.buf, p)
	return len(p), nil
}
