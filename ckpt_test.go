package pfg

// Streamer-level durability contract: Checkpoint/RestoreStreamer round the
// full public surface — the restored streamer resumes at the checkpointed
// generation and its snapshots are bit-identical (Workers:1) to the
// original's, including as both keep evolving through pushes and rebuilds.
// The byte-level fault injection lives in internal/ckpt/crash_test.go; this
// file owns the API semantics: config-only checkpoints, closed streamers,
// cluster-option rebinding, and the incremental layer's deliberate
// cache-not-state behavior across a restore.

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"pfg/internal/ckpt"
)

// checkpointBytes snapshots a streamer's durable form.
func checkpointBytes(t *testing.T, st *Streamer) (uint64, []byte) {
	t.Helper()
	var buf bytes.Buffer
	gen, err := st.Checkpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return gen, buf.Bytes()
}

func TestStreamerCheckpointRestore(t *testing.T) {
	const n, window, K, k = 10, 16, 4, 3
	ctx := context.Background()
	configs := []struct {
		name string
		opts StreamOptions
	}{
		{"float64", StreamOptions{Cluster: Options{Workers: 1}, RebuildEvery: K}},
		{"float32", StreamOptions{Cluster: Options{Workers: 1}, RebuildEvery: K, Precision: Float32}},
		{"hac", StreamOptions{Cluster: Options{Method: CompleteLinkage, Workers: 1}, RebuildEvery: K}},
	}
	feed := tickStream(t, n, window+2*K+9, 77)
	for _, cfg := range configs {
		t.Run(cfg.name, func(t *testing.T) {
			orig, err := NewStreamer(window, cfg.opts)
			if err != nil {
				t.Fatal(err)
			}
			defer orig.Close()
			cut := window - 3 // checkpoint mid-fill
			for _, x := range feed[:cut] {
				if err := orig.Push(x); err != nil {
					t.Fatal(err)
				}
			}
			gen, data := checkpointBytes(t, orig)
			if gen != orig.Generation() {
				t.Fatalf("checkpoint stamped gen %d, streamer at %d", gen, orig.Generation())
			}

			restored, err := RestoreStreamer(bytes.NewReader(data), cfg.opts.Cluster)
			if err != nil {
				t.Fatal(err)
			}
			defer restored.Close()
			if restored.Generation() != gen || restored.Len() != orig.Len() ||
				restored.Window() != window || restored.Precision() != cfg.opts.Precision ||
				restored.Series() != n {
				t.Fatalf("restored shape diverges: gen %d len %d window %d", restored.Generation(), restored.Len(), restored.Window())
			}

			// Lockstep from here: every push lands both on the same state,
			// every snapshot serves the same bits.
			for i, x := range feed[cut:] {
				if err := orig.Push(x); err != nil {
					t.Fatal(err)
				}
				if err := restored.Push(x); err != nil {
					t.Fatal(err)
				}
				if orig.Generation() != restored.Generation() {
					t.Fatalf("tick %d: gen %d != %d", i, orig.Generation(), restored.Generation())
				}
			}
			a, err := orig.Snapshot(ctx)
			if err != nil {
				t.Fatal(err)
			}
			b, err := restored.Snapshot(ctx)
			if err != nil {
				t.Fatal(err)
			}
			sameResult(t, cfg.name, b, a, k)

			// A forced rebuild on both sides must preserve the identity.
			if err := orig.Rebuild(); err != nil {
				t.Fatal(err)
			}
			if err := restored.Rebuild(); err != nil {
				t.Fatal(err)
			}
			a, err = orig.Snapshot(ctx)
			if err != nil {
				t.Fatal(err)
			}
			b, err = restored.Snapshot(ctx)
			if err != nil {
				t.Fatal(err)
			}
			sameResult(t, cfg.name+"/rebuilt", b, a, k)
		})
	}
}

// TestStreamerCheckpointIncremental pins the cache-not-state design: the
// incremental layer's reference clustering is not persisted, so the restored
// streamer's first snapshot is an exact re-cluster — and from then on both
// sides evolve through identical gate decisions when driven in lockstep.
func TestStreamerCheckpointIncremental(t *testing.T) {
	const n, window, k = 10, 16, 3
	ctx := context.Background()
	opts := StreamOptions{
		Cluster:      Options{Workers: 1},
		RebuildEvery: 8,
		Incremental:  IncrementalOptions{Enabled: true, DriftThreshold: 0.05, MaxStale: 16},
	}
	feed := tickStream(t, n, window+14, 51)
	orig, err := NewStreamer(window, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer orig.Close()
	for _, x := range feed[:window+5] {
		if err := orig.Push(x); err != nil {
			t.Fatal(err)
		}
	}
	// Note: no snapshot before the checkpoint — the reference cache on the
	// original side must not exist yet, or the restored side (which cannot
	// have it) would be entitled to diverge in TicksSinceExact.
	_, data := checkpointBytes(t, orig)
	restored, err := RestoreStreamer(bytes.NewReader(data), opts.Cluster)
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close()
	if _, ok := restored.IncrementalStats(); !ok {
		t.Fatal("restored streamer lost its incremental layer")
	}

	a, err := orig.Snapshot(ctx)
	if err != nil {
		t.Fatal(err)
	}
	b, err := restored.Snapshot(ctx)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "first", b, a, k)
	if b.TicksSinceExact != 0 {
		t.Fatalf("restored first snapshot served stale (age %d), want exact", b.TicksSinceExact)
	}

	// Lockstep pushes + snapshots: the serving gates (drift, staleness)
	// see identical histories on both sides.
	for i, x := range feed[window+5:] {
		if err := orig.Push(x); err != nil {
			t.Fatal(err)
		}
		if err := restored.Push(x); err != nil {
			t.Fatal(err)
		}
		a, err := orig.Snapshot(ctx)
		if err != nil {
			t.Fatal(err)
		}
		b, err := restored.Snapshot(ctx)
		if err != nil {
			t.Fatal(err)
		}
		sameResult(t, "lockstep", b, a, k)
		if a.TicksSinceExact != b.TicksSinceExact {
			t.Fatalf("tick %d: staleness %d != %d", i, a.TicksSinceExact, b.TicksSinceExact)
		}
	}
}

// TestStreamerCheckpointBeforeFirstPush: a streamer that has admitted
// nothing checkpoints its configuration alone and restores to a working
// (still series-less) streamer.
func TestStreamerCheckpointBeforeFirstPush(t *testing.T) {
	opts := StreamOptions{Cluster: Options{Workers: 1}, RebuildEvery: 6, Precision: Float32}
	st, err := NewStreamer(24, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	gen, data := checkpointBytes(t, st)
	if gen != 0 {
		t.Fatalf("empty streamer checkpointed at gen %d", gen)
	}
	restored, err := RestoreStreamer(bytes.NewReader(data), opts.Cluster)
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close()
	if restored.Window() != 24 || restored.Precision() != Float32 || restored.Series() != 0 {
		t.Fatalf("restored config diverges: window %d precision %v series %d",
			restored.Window(), restored.Precision(), restored.Series())
	}
	// It must come alive exactly like a fresh streamer.
	feed := tickStream(t, 6, 8, 9)
	for _, x := range feed[:4] {
		if err := restored.Push(x); err != nil {
			t.Fatal(err)
		}
	}
	if restored.Series() != 6 || restored.Generation() != 4 {
		t.Fatalf("restored streamer did not admit pushes: series %d gen %d", restored.Series(), restored.Generation())
	}
}

func TestStreamerCheckpointClosed(t *testing.T) {
	st, err := NewStreamer(16, StreamOptions{Cluster: Options{Workers: 1}})
	if err != nil {
		t.Fatal(err)
	}
	st.Close()
	var buf bytes.Buffer
	if _, err := st.Checkpoint(&buf); !errors.Is(err, ErrClosed) {
		t.Fatalf("checkpoint of a closed streamer: %v, want ErrClosed", err)
	}
}

func TestRestoreStreamerRejectsGarbage(t *testing.T) {
	if _, err := RestoreStreamer(bytes.NewReader([]byte("not a checkpoint")), Options{}); err == nil {
		t.Fatal("garbage restored")
	} else if !errors.Is(err, ckpt.ErrCorrupt) && !errors.Is(err, ckpt.ErrBadMagic) && !errors.Is(err, ckpt.ErrFormat) {
		t.Fatalf("untyped error %v", err)
	}
}
