package pfg

// End-to-end allocation benchmarks for the flat-memory refactor. These
// measure the steady-state cost of repeated Cluster calls on same-shaped
// inputs — the serving pattern the workspace pool optimizes — and are the
// benchmarks whose numbers are recorded in BENCH_flatmem.json.
//
// Run with:
//
//	go test -bench 'BenchmarkCluster' -benchmem -run '^$' .

import (
	"fmt"
	"testing"

	"pfg/internal/tsgen"
)

// clusterBenchCases covers the paper's method (TMFG+DBHT) and the HAC
// baseline at a small and a medium problem size.
var clusterBenchCases = []struct {
	method Method
	n      int
}{
	{TMFGDBHT, 128},
	{TMFGDBHT, 512},
	{CompleteLinkage, 128},
	{CompleteLinkage, 512},
}

func benchSeries(n int) [][]float64 {
	ds := tsgen.GenerateClassed("flatmem", n, 96, 6, 0.6, 7)
	return ds.Series
}

// BenchmarkCluster measures repeated sequential Cluster calls. After the
// first call warms the workspace pool, later same-shape calls should run at
// steady-state allocation rates (see README "Flat memory and workspaces").
func BenchmarkCluster(b *testing.B) {
	for _, tc := range clusterBenchCases {
		b.Run(fmt.Sprintf("%v/n=%d", tc.method, tc.n), func(b *testing.B) {
			series := benchSeries(tc.n)
			opts := Options{Method: tc.method, Prefix: 10}
			// Warm-up call so b.N iterations measure steady state.
			if _, err := Cluster(series, opts); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Cluster(series, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkClusterParallelCalls measures concurrent Cluster calls sharing
// the default pool and the process-wide workspace pool — the serving
// scenario where allocation churn turns into GC pressure.
func BenchmarkClusterParallelCalls(b *testing.B) {
	for _, tc := range clusterBenchCases {
		b.Run(fmt.Sprintf("%v/n=%d", tc.method, tc.n), func(b *testing.B) {
			series := benchSeries(tc.n)
			opts := Options{Method: tc.method, Prefix: 10}
			if _, err := Cluster(series, opts); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					if _, err := Cluster(series, opts); err != nil {
						b.Error(err)
						return
					}
				}
			})
		})
	}
}
