package pfg

// Determinism tests for the flat-memory refactor: the bubble enumeration
// and the final clustering must be identical whether the pipeline runs
// sequentially (Workers:1) or on a pooled multi-worker schedule, and
// repeated pooled runs must not be perturbed by recycled workspace state.

import (
	"context"
	"fmt"
	"testing"

	"pfg/internal/bubbletree"
	"pfg/internal/core"
	"pfg/internal/exec"
	"pfg/internal/tmfg"
	"pfg/internal/tsgen"
)

func treeFingerprint(t *bubbletree.Tree) string {
	s := fmt.Sprintf("root=%d;", t.Root)
	for i := range t.Nodes {
		n := &t.Nodes[i]
		s += fmt.Sprintf("%d:v=%v,sep=%v,p=%d,c=%v;", i, n.Vertices, n.Sep, n.Parent, n.Children)
	}
	return s
}

// TestBubbleEnumerationDeterminism checks that TMFG bubble-tree
// construction — nodes, separating triangles, parent/child structure, and
// the per-vertex bubble lists — is identical between a Workers:1 run and
// pooled runs, including repeated pooled runs on warm workspaces.
func TestBubbleEnumerationDeterminism(t *testing.T) {
	ds := tsgen.GenerateClassed("determinism", 150, 64, 5, 0.7, 11)
	sim, _, err := core.Correlate(ds.Series)
	if err != nil {
		t.Fatal(err)
	}
	for _, prefix := range []int{1, 10} {
		seq := exec.New(1)
		rSeq, err := tmfg.BuildCtx(context.Background(), seq, sim, prefix)
		seq.Close()
		if err != nil {
			t.Fatal(err)
		}
		want := treeFingerprint(rSeq.Tree)
		wantVB := fmt.Sprint(rSeq.Tree.VertexBubbles(sim.N))
		for trial := 0; trial < 3; trial++ {
			rPar, err := tmfg.Build(sim, prefix) // shared pooled default
			if err != nil {
				t.Fatal(err)
			}
			if got := treeFingerprint(rPar.Tree); got != want {
				t.Fatalf("prefix=%d trial=%d: pooled bubble tree differs from Workers:1", prefix, trial)
			}
			if got := fmt.Sprint(rPar.Tree.VertexBubbles(sim.N)); got != wantVB {
				t.Fatalf("prefix=%d trial=%d: pooled vertex-bubble lists differ", prefix, trial)
			}
			if len(rPar.Edges) != len(rSeq.Edges) {
				t.Fatalf("prefix=%d: edge count differs", prefix)
			}
			for i := range rPar.Edges {
				if rPar.Edges[i] != rSeq.Edges[i] {
					t.Fatalf("prefix=%d: edge %d differs: %v vs %v", prefix, i, rPar.Edges[i], rSeq.Edges[i])
				}
			}
		}
	}
}

// TestClusterLabelsDeterminism checks end-to-end that Cut(k) labels from a
// Workers:1 run match pooled runs exactly, for both the paper pipeline and
// the HAC baseline.
func TestClusterLabelsDeterminism(t *testing.T) {
	ds := tsgen.GenerateClassed("determinism-e2e", 120, 64, 4, 0.7, 13)
	for _, method := range []Method{TMFGDBHT, CompleteLinkage} {
		rSeq, err := Cluster(ds.Series, Options{Method: method, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		wantLabels, err := rSeq.Cut(4)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 3; trial++ {
			rPar, err := Cluster(ds.Series, Options{Method: method}) // pooled
			if err != nil {
				t.Fatal(err)
			}
			if len(rPar.Dendrogram.Merges) != len(rSeq.Dendrogram.Merges) {
				t.Fatalf("%v trial %d: merge count differs", method, trial)
			}
			for i := range rPar.Dendrogram.Merges {
				if rPar.Dendrogram.Merges[i] != rSeq.Dendrogram.Merges[i] {
					t.Fatalf("%v trial %d: merge %d differs: %+v vs %+v",
						method, trial, i, rPar.Dendrogram.Merges[i], rSeq.Dendrogram.Merges[i])
				}
			}
			gotLabels, err := rPar.Cut(4)
			if err != nil {
				t.Fatal(err)
			}
			for i := range gotLabels {
				if gotLabels[i] != wantLabels[i] {
					t.Fatalf("%v trial %d: label[%d] = %d, want %d", method, trial, i, gotLabels[i], wantLabels[i])
				}
			}
		}
	}
}
