package pfg

import (
	"encoding/binary"
	"math"
	"testing"
)

// fuzzSym builds an n×n symmetric matrix from a fuzz payload: upper-triangle
// entries are 8 raw bytes reinterpreted as float64 (cycled when the payload
// is short) and mirrored, so the input is symmetric by construction but
// otherwise arbitrary — non-finite values, non-metric dissimilarities,
// out-of-range "correlations", constant rows.
func fuzzSym(n int, data []byte) *Matrix {
	m := &Matrix{N: n, Data: make([]float64, n*n)}
	pos := 0
	var buf [8]byte
	next := func() float64 {
		for b := range buf {
			if len(data) == 0 {
				buf[b] = byte(pos * 31)
			} else {
				buf[b] = data[pos%len(data)]
			}
			pos++
		}
		return math.Float64frombits(binary.LittleEndian.Uint64(buf[:]))
	}
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := next()
			m.Data[i*n+j] = v
			m.Data[j*n+i] = v
		}
	}
	return m
}

// FuzzClusterMatrix: arbitrary symmetric inputs through every method must
// either be rejected with an error (non-finite entries, undersized inputs)
// or produce a dendrogram that cuts cleanly — never panic and never hang.
// Workers:1 keeps each execution deterministic, so any crasher the fuzzer
// finds minimizes reproducibly.
func FuzzClusterMatrix(f *testing.F) {
	f.Add(uint8(6), uint8(0), uint8(2), []byte{})
	f.Add(uint8(4), uint8(1), uint8(1), []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f}) // NaN
	f.Add(uint8(8), uint8(2), uint8(3), []byte{0x3f, 0xf0, 0, 0, 0, 0, 0, 0})
	f.Add(uint8(12), uint8(3), uint8(4), []byte{1, 2, 3, 4, 5, 6, 7, 8, 9})
	f.Add(uint8(3), uint8(0), uint8(1), []byte{7}) // below the TMFG minimum: must error
	f.Add(uint8(16), uint8(0), uint8(2), []byte{0, 0, 0, 0, 0, 0, 0xe0, 0x47})
	f.Fuzz(func(t *testing.T, nRaw, methodRaw, kRaw uint8, data []byte) {
		n := 2 + int(nRaw)%19 // 2..20: PMFG planarity stays fuzz-speed
		method := Method(int(methodRaw) % 4)
		sim := fuzzSym(n, data)
		res, err := ClusterMatrix(sim, nil, Options{
			Method:  method,
			Prefix:  1 + int(kRaw)%3,
			Workers: 1,
		})
		if err != nil {
			return
		}
		k := 1 + int(kRaw)%n
		labels, err := res.Cut(k)
		if err != nil {
			t.Fatalf("accepted input but Cut(%d) failed: %v", k, err)
		}
		if len(labels) != n {
			t.Fatalf("%d labels for %d objects", len(labels), n)
		}
		for i, l := range labels {
			if l < 0 || l >= k {
				t.Fatalf("label[%d] = %d out of [0,%d)", i, l, k)
			}
		}
		if _, err := res.Newick(nil); err != nil {
			t.Fatalf("accepted input but Newick failed: %v", err)
		}
	})
}
