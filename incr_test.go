package pfg

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"testing"
)

// incShadow pairs an incremental streamer with a bit-identical shadow: a
// plain streamer fed the same pushes, snapshotted at every generation. The
// incremental serving contract is then directly checkable — a snapshot
// reporting TicksSinceExact = s at generation g must be bit-identical to
// the shadow's exact snapshot at generation g−s.
type incShadow struct {
	inc    *Streamer
	shadow *Streamer
	// byGen holds the shadow's exact clustering per generation.
	byGen map[uint64]*Result
}

func newIncShadow(t *testing.T, window int, opts StreamOptions) *incShadow {
	t.Helper()
	if opts.Cluster.Workers == 0 {
		opts.Cluster.Workers = 1 // determinism is the whole point
	}
	is := &incShadow{byGen: map[uint64]*Result{}}
	var err error
	if is.inc, err = NewStreamer(window, opts); err != nil {
		t.Fatal(err)
	}
	plain := opts
	plain.Incremental = IncrementalOptions{}
	if is.shadow, err = NewStreamer(window, plain); err != nil {
		t.Fatal(err)
	}
	return is
}

func (is *incShadow) Close() {
	is.inc.Close()
	is.shadow.Close()
}

// push feeds both streamers and records the shadow's exact clustering for
// the new generation (once the window is snapshot-ready).
func (is *incShadow) push(t *testing.T, x []float64) {
	t.Helper()
	if err := is.inc.Push(x); err != nil {
		t.Fatal(err)
	}
	if err := is.shadow.Push(x); err != nil {
		t.Fatal(err)
	}
	r, gen, err := is.shadow.SnapshotGen(context.Background())
	if err != nil {
		return // under-filled window or method minimum; nothing to record
	}
	is.byGen[gen] = r
}

// rebuild forces an exact rebuild on both streamers and records the
// shadow's clustering for the post-rebuild generation.
func (is *incShadow) rebuild(t *testing.T) {
	t.Helper()
	if err := is.inc.Rebuild(); err != nil {
		t.Fatal(err)
	}
	if err := is.shadow.Rebuild(); err != nil {
		t.Fatal(err)
	}
	r, gen, err := is.shadow.SnapshotGen(context.Background())
	if err != nil {
		return
	}
	is.byGen[gen] = r
}

// check snapshots the incremental streamer and asserts the serving
// contract against the shadow. It returns the snapshot for extra checks,
// or nil if the window is not snapshot-ready.
func (is *incShadow) check(t *testing.T, tag string, k int) *Result {
	t.Helper()
	snap, gen, err := is.inc.SnapshotGen(context.Background())
	if err != nil {
		// Must fail in lockstep with the shadow.
		if _, _, serr := is.shadow.SnapshotGen(context.Background()); serr == nil {
			t.Fatalf("%s: incremental snapshot failed (%v) but shadow succeeded", tag, err)
		}
		return nil
	}
	if snap.TicksSinceExact < 0 {
		t.Fatalf("%s: negative staleness %d", tag, snap.TicksSinceExact)
	}
	eps := is.inc.opts.Incremental.DriftThreshold
	if eps == 0 {
		eps = 0.02
	}
	if snap.TicksSinceExact > 0 && snap.Drift > eps {
		t.Fatalf("%s: served drift %v beyond threshold %v", tag, snap.Drift, eps)
	}
	maxStale := is.inc.opts.Incremental.MaxStale
	if maxStale == 0 {
		maxStale = 64
	}
	if maxStale > 0 && snap.TicksSinceExact >= maxStale {
		t.Fatalf("%s: served staleness %d beyond bound %d", tag, snap.TicksSinceExact, maxStale)
	}
	refGen := gen - uint64(snap.TicksSinceExact)
	want, ok := is.byGen[refGen]
	if !ok {
		t.Fatalf("%s: no shadow clustering recorded for reference generation %d (now %d, stale %d)",
			tag, refGen, gen, snap.TicksSinceExact)
	}
	sameResult(t, tag, snap, want, k)
	return snap
}

// TestIncrementalMatchesBatchAtBoundaries is the incremental layer's half of
// the streaming equivalence property: with Workers:1, snapshots at the fill
// boundary, right after the periodic rebuild, and right after a forced
// rebuild are bit-identical to batch Cluster on the same window — and report
// zero staleness and drift. Between boundaries, every snapshot matches the
// shadow's exact clustering of its reference generation.
func TestIncrementalMatchesBatchAtBoundaries(t *testing.T) {
	const n, window, K, k = 12, 24, 8, 3
	stream := tickStream(t, n, window+2*K+3, 31)
	for _, m := range []Method{TMFGDBHT, CompleteLinkage, AverageLinkage} {
		t.Run(m.String(), func(t *testing.T) {
			opts := Options{Method: m, Prefix: 2, Workers: 1}
			is := newIncShadow(t, window, StreamOptions{
				Cluster:      opts,
				RebuildEvery: K,
				// At window=24 a single slide moves correlations well past the
				// production default ε; loosen it so the hit path is exercised.
				// The serving contract is still asserted against this ε.
				Incremental: IncrementalOptions{Enabled: true, DriftThreshold: 0.5},
			})
			defer is.Close()
			boundary := func(tag string, pushed int) {
				t.Helper()
				snap := is.check(t, tag, k)
				if snap == nil {
					t.Fatalf("%s: no snapshot", tag)
				}
				if snap.TicksSinceExact != 0 || snap.Drift != 0 {
					t.Fatalf("%s: boundary snapshot reports stale=%d drift=%v",
						tag, snap.TicksSinceExact, snap.Drift)
				}
				batch, err := Cluster(windowSeries(stream, pushed, window, n), opts)
				if err != nil {
					t.Fatalf("%s: batch: %v", tag, err)
				}
				sameResult(t, tag, snap, batch, k)
			}
			for p, x := range stream {
				is.push(t, x)
				pushed := p + 1
				switch {
				case pushed == window:
					boundary("fill", pushed)
				case pushed == window+K:
					if !is.inc.Exact() {
						t.Fatalf("tick %d: periodic rebuild did not run", pushed)
					}
					boundary("periodic-rebuild", pushed)
				case pushed == window+K+3:
					is.rebuild(t)
					boundary("forced-rebuild", pushed)
				default:
					is.check(t, fmt.Sprintf("tick-%d", pushed), k)
				}
			}
			stats, on := is.inc.IncrementalStats()
			if !on {
				t.Fatal("incremental layer reports disabled")
			}
			if stats.Hits == 0 {
				t.Fatal("no incremental hits over the whole run")
			}
			if stats.Fulls != stats.FullInit+stats.FullBoundary+stats.FullDrift+stats.FullStale+stats.FullRepair {
				t.Fatalf("gate counters don't sum: %+v", stats)
			}
		})
	}
}

// TestIncrementalForcedFallback: a negative drift threshold forces the exact
// path on every snapshot — every tick matches batch behavior exactly via the
// shadow, nothing is ever served stale, and the hit counter stays zero.
func TestIncrementalForcedFallback(t *testing.T) {
	const n, window, k = 8, 12, 2
	stream := tickStream(t, n, window+6, 43)
	is := newIncShadow(t, window, StreamOptions{
		Cluster:     Options{Method: TMFGDBHT, Prefix: 2, Workers: 1},
		Incremental: IncrementalOptions{Enabled: true, DriftThreshold: -1},
	})
	defer is.Close()
	for p, x := range stream {
		is.push(t, x)
		if snap := is.check(t, fmt.Sprintf("tick-%d", p+1), k); snap != nil {
			if snap.TicksSinceExact != 0 || snap.Drift != 0 {
				t.Fatalf("tick %d: forced fallback served stale=%d drift=%v",
					p+1, snap.TicksSinceExact, snap.Drift)
			}
		}
	}
	stats, _ := is.inc.IncrementalStats()
	if stats.Hits != 0 {
		t.Fatalf("forced fallback recorded %d hits", stats.Hits)
	}
	if stats.FullDrift == 0 {
		t.Fatal("forced fallback never tripped the drift gate")
	}
}

// TestIncrementalRebuildEveryOne: the RebuildEvery=1 degeneracy keeps the
// engine exact on every slide, so every snapshot is a boundary refresh and
// stays bit-identical to batch on every single tick.
func TestIncrementalRebuildEveryOne(t *testing.T) {
	const n, window, k = 8, 10, 2
	stream := tickStream(t, n, window+5, 59)
	opts := Options{Method: CompleteLinkage, Workers: 1}
	is := newIncShadow(t, window, StreamOptions{
		Cluster:      opts,
		RebuildEvery: 1,
		Incremental:  IncrementalOptions{Enabled: true},
	})
	defer is.Close()
	for p, x := range stream {
		is.push(t, x)
		pushed := p + 1
		snap := is.check(t, fmt.Sprintf("tick-%d", pushed), k)
		if snap == nil {
			continue
		}
		if snap.TicksSinceExact != 0 {
			t.Fatalf("tick %d: rebuild-every-1 served a stale result (stale=%d)", pushed, snap.TicksSinceExact)
		}
		batch, err := Cluster(windowSeries(stream, pushed, window, n), opts)
		if err != nil {
			t.Fatal(err)
		}
		sameResult(t, fmt.Sprintf("tick-%d", pushed), snap, batch, k)
	}
}

// TestIncrementalMinSeries: the incremental layer at n just above
// Method.MinSeries() — the smallest TMFG (n=4, a bare 4-clique with no
// insertion rounds) and the smallest HAC (n=2, the single-merge shortcut) —
// honors the same serving contract, including in strict mode.
func TestIncrementalMinSeries(t *testing.T) {
	cases := []struct {
		method Method
		n      int
	}{
		{TMFGDBHT, 4},
		{TMFGDBHT, 5},
		{CompleteLinkage, 2},
		{CompleteLinkage, 3},
	}
	for _, c := range cases {
		t.Run(fmt.Sprintf("%s_n%d", c.method, c.n), func(t *testing.T) {
			const window = 8
			// tsgen needs n >= 3 classes; generate tiny streams directly.
			stream := make([][]float64, window+10)
			for p := range stream {
				x := make([]float64, c.n)
				for i := range x {
					x[i] = math.Sin(float64(p+1)*0.7+float64(i)*1.3) + 0.25*float64(i)
				}
				stream[p] = x
			}
			is := newIncShadow(t, window, StreamOptions{
				Cluster:      Options{Method: c.method, Prefix: 1, Workers: 1},
				RebuildEvery: 4,
				Incremental: IncrementalOptions{
					Enabled:       true,
					MaxStale:      3,
					RepairBudget:  1,
					ValidateEvery: 2,
				},
			})
			defer is.Close()
			for p, x := range stream {
				is.push(t, x)
				is.check(t, fmt.Sprintf("tick-%d", p+1), 2)
			}
		})
	}
}

// TestIncrementalStrictMode drives the RepairBudget revalidation path on
// realistic sizes and checks the serving contract still holds tick by tick
// (certified hits included) while the repair counters actually move.
func TestIncrementalStrictMode(t *testing.T) {
	const n, window, k = 12, 24, 3
	for _, m := range []Method{TMFGDBHT, CompleteLinkage} {
		t.Run(m.String(), func(t *testing.T) {
			stream := tickStream(t, n, window+24, 83)
			is := newIncShadow(t, window, StreamOptions{
				Cluster:      Options{Method: m, Prefix: 2, Workers: 1},
				RebuildEvery: 1 << 20, // keep periodic rebuilds out of the way
				Incremental: IncrementalOptions{
					Enabled:        true,
					DriftThreshold: 1, // let revalidation, not drift, decide
					MaxStale:       -1,
					RepairBudget:   2,
					ValidateEvery:  1,
				},
			})
			defer is.Close()
			for p, x := range stream {
				is.push(t, x)
				is.check(t, fmt.Sprintf("tick-%d", p+1), k)
			}
			stats, _ := is.inc.IncrementalStats()
			if stats.Repairs+stats.FullRepair == 0 {
				t.Fatalf("strict mode never exercised revalidation: %+v", stats)
			}
		})
	}
}

// TestIncrementalGoldenAcrossRebuild replays the golden corpus input through
// an incremental streamer: the fill-boundary snapshot must reproduce the
// committed golden fixture bit for bit, and the snapshot right after a
// periodic rebuild later in the same incremental run must match batch.
func TestIncrementalGoldenAcrossRebuild(t *testing.T) {
	const K = 6
	for _, c := range goldenCases() {
		if c.Method == PMFGDBHT {
			continue // incremental streaming does not support PMFG
		}
		t.Run(fmt.Sprintf("%s_n%d", c.Method, c.N), func(t *testing.T) {
			series := goldenSeries(c.N)
			window := len(series[0])
			opts := Options{Method: c.Method, Prefix: 2, Workers: 1}
			is := newIncShadow(t, window, StreamOptions{
				Cluster:      opts,
				RebuildEvery: K,
				Incremental:  IncrementalOptions{Enabled: true},
			})
			defer is.Close()
			// The golden series as ticks, then one rebuild period more of
			// deterministic follow-on ticks to cross a periodic rebuild
			// inside the incremental run.
			ticks := make([][]float64, window+K)
			for p := range ticks {
				x := make([]float64, c.N)
				for i := range x {
					x[i] = series[i][p%window]
				}
				ticks[p] = x
			}
			for p, x := range ticks {
				is.push(t, x)
				pushed := p + 1
				switch pushed {
				case window:
					snap := is.check(t, "golden-fill", c.K)
					raw, err := os.ReadFile(goldenPath(c))
					if err != nil {
						t.Fatalf("missing golden file: %v", err)
					}
					var want goldenFixture
					if err := json.Unmarshal(raw, &want); err != nil {
						t.Fatal(err)
					}
					labels, err := snap.Cut(c.K)
					if err != nil {
						t.Fatal(err)
					}
					for i := range labels {
						if labels[i] != want.Labels[i] {
							t.Fatalf("label[%d] = %d, golden %d", i, labels[i], want.Labels[i])
						}
					}
					nw, err := snap.Newick(nil)
					if err != nil {
						t.Fatal(err)
					}
					if nw != want.Newick {
						t.Fatalf("newick differs from golden:\n got %s\nwant %s", nw, want.Newick)
					}
					if got := fmt.Sprintf("%x", snap.EdgeWeightSum); got != want.EdgeWeightSum {
						t.Fatalf("edge weight sum %s, golden %s", got, want.EdgeWeightSum)
					}
					if snap.Groups != want.Groups {
						t.Fatalf("groups %d, golden %d", snap.Groups, want.Groups)
					}
				case window + K:
					if !is.inc.Exact() {
						t.Fatalf("tick %d: periodic rebuild did not run", pushed)
					}
					snap := is.check(t, "golden-rebuild", c.K)
					if snap.TicksSinceExact != 0 {
						t.Fatalf("rebuild boundary served stale result (stale=%d)", snap.TicksSinceExact)
					}
					batch, err := Cluster(windowSeries(ticks, pushed, window, c.N), opts)
					if err != nil {
						t.Fatal(err)
					}
					sameResult(t, "golden-rebuild", snap, batch, c.K)
				default:
					is.check(t, fmt.Sprintf("tick-%d", pushed), c.K)
				}
			}
		})
	}
}

// TestIncrementalStalenessSurfaced: the staleness metadata reaches the JSON
// wire form, and exact results serialize byte-identically to their
// pre-incremental form (the new fields are omitempty).
func TestIncrementalStalenessSurfaced(t *testing.T) {
	const n, window = 8, 10
	stream := tickStream(t, n, window+8, 101)
	is := newIncShadow(t, window, StreamOptions{
		Cluster:      Options{Method: CompleteLinkage, Workers: 1},
		RebuildEvery: 1 << 20,
		Incremental:  IncrementalOptions{Enabled: true, MaxStale: -1, DriftThreshold: 1},
	})
	defer is.Close()
	var stale *Result
	for p, x := range stream {
		is.push(t, x)
		if snap := is.check(t, fmt.Sprintf("tick-%d", p+1), 2); snap != nil && snap.TicksSinceExact > 0 {
			stale = snap
		}
	}
	if stale == nil {
		t.Fatal("run produced no served-stale snapshot")
	}
	v, err := stale.JSON(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if v.StaleTicks != stale.TicksSinceExact || v.Drift != stale.Drift {
		t.Fatalf("wire staleness %d/%v, result %d/%v", v.StaleTicks, v.Drift, stale.TicksSinceExact, stale.Drift)
	}
	raw, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatal(err)
	}
	if _, ok := decoded["stale_ticks"]; !ok {
		t.Fatal("stale_ticks missing from wire form of a stale result")
	}
	// Exact results omit the fields entirely.
	exact := &Result{Dendrogram: stale.Dendrogram}
	ev, err := exact.JSON(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	eraw, err := json.Marshal(ev)
	if err != nil {
		t.Fatal(err)
	}
	var edecoded map[string]any
	if err := json.Unmarshal(eraw, &edecoded); err != nil {
		t.Fatal(err)
	}
	if _, ok := edecoded["stale_ticks"]; ok {
		t.Fatal("stale_ticks present on an exact result")
	}
	if _, ok := edecoded["drift"]; ok {
		t.Fatal("drift present on an exact result")
	}
}

// FuzzIncrementalCluster is the incremental-vs-exact oracle as a fuzz
// target: arbitrary push sequences, window shapes, and gate parameters must
// keep every incremental snapshot bit-identical to the exact clustering of
// its reference generation (via the shadow streamer), with drift and
// staleness inside the documented bounds. Any divergence is a crasher.
func FuzzIncrementalCluster(f *testing.F) {
	f.Add(uint8(8), uint8(6), uint8(0), uint8(3), uint8(0), []byte("seed-a"))
	f.Add(uint8(4), uint8(4), uint8(1), uint8(1), uint8(2), []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	f.Add(uint8(2), uint8(5), uint8(2), uint8(8), uint8(1), []byte{0xff, 0x00, 0x80, 0x7f})
	f.Add(uint8(12), uint8(10), uint8(0), uint8(2), uint8(3), []byte("golden-ish-run"))
	f.Add(uint8(5), uint8(3), uint8(1), uint8(0), uint8(0), []byte{})
	f.Fuzz(func(t *testing.T, nRaw, windowRaw, methodRaw, gateRaw, strictRaw uint8, data []byte) {
		method := []Method{TMFGDBHT, CompleteLinkage, AverageLinkage}[int(methodRaw)%3]
		n := method.MinSeries() + int(nRaw)%9
		window := 3 + int(windowRaw)%10
		eps := []float64{-1, 0, 0.005, 0.05, 1}[int(gateRaw)%5]
		maxStale := -1 + int(gateRaw>>3)%6 // -1 (off) .. 4
		rebuildEvery := 1 + int(gateRaw)%7
		repair := int(strictRaw) % 3
		validate := 1 + int(strictRaw>>2)%3
		is := newIncShadow(t, window, StreamOptions{
			Cluster:      Options{Method: method, Prefix: 1 + int(methodRaw)%3, Workers: 1},
			RebuildEvery: rebuildEvery,
			Incremental: IncrementalOptions{
				Enabled:        true,
				DriftThreshold: eps,
				MaxStale:       maxStale,
				RepairBudget:   repair,
				ValidateEvery:  validate,
			},
		})
		defer is.Close()
		ticks := 2*window + 8
		pos := 0
		next := func() float64 {
			if len(data) == 0 {
				pos++
				return float64((pos*37)%61) / 8
			}
			b := data[pos%len(data)]
			pos++
			// Small finite values; repeats produce constant (zero-variance)
			// series on purpose.
			return float64(int8(b)) / 16
		}
		x := make([]float64, n)
		for k := 0; k < ticks; k++ {
			for i := range x {
				x[i] = next()
			}
			is.push(t, x)
			is.check(t, fmt.Sprintf("tick-%d", k+1), 2)
		}
	})
}

var _ = math.Inf // keep math imported for future contract tightening
